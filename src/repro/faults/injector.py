"""Deterministic fault injection for the simulated GPU substrate.

Long-running many-GPU NUFFT pipelines (the paper's MTIP deployment, and the
ROADMAP's serving north star) must survive flaky hardware: transient kernel
launch failures, device OOMs, stuck/slow launches and outright device death.
The :class:`FaultInjector` reproduces those failure modes *deterministically*
on the simulated substrate, so resilience behaviour (retries, circuit
breakers, degraded serving) can be pinned by tests and benchmarked by
``benchmarks/bench_chaos.py``.

Design
------

* **Seedable and reproducible.**  Every fault decision is a pure function of
  ``(seed, device_id, event_index, spec_index)`` hashed through ``blake2b``
  -- no global RNG state, no ordering sensitivity beyond the submission order
  itself.  Two runs with the same seed and the same request sequence inject
  the *identical* fault schedule.  The seed defaults to the
  ``REPRO_FAULT_SEED`` environment variable (0 when unset).
* **Pluggable fault specs.**  A :class:`FaultSpec` describes one fault kind
  (``"transient"``, ``"oom"``, ``"slow"``, ``"death"``), its per-event rate,
  an optional device restriction and an event threshold before it becomes
  eligible.  Specs are evaluated in order; the first one that fires wins.
* **Hooked where real CUDA errors surface.**  The injector is consulted from
  :meth:`repro.gpu.device.Stream.enqueue` (stream-op hook: slow launches and
  device death) and from the ``device_sim`` backend's stage execution
  (kernel-launch hook: transient failures, OOMs and death), so faults raise
  inside ``Plan.execute`` / timeline modelling exactly where a real
  ``cudaError`` would.

Example
-------

>>> from repro.faults import FaultInjector, FaultSpec
>>> from repro.gpu.device import Device
>>> inj = FaultInjector([FaultSpec("slow", rate=1.0, latency_multiplier=3.0)],
...                     seed=7)
>>> dev = Device()
>>> _ = inj.attach([dev])
>>> stream = dev.create_stream()
>>> stream.enqueue("exec", 1.0).time   # every launch slowed 3x
3.0
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultStats",
    "FaultInjector",
    "DeviceFaultError",
    "TransientKernelError",
    "DeviceOOMError",
    "DeviceLostError",
    "fault_seed_from_env",
]

#: Supported fault kinds, in the order the paper's failure taxonomy needs
#: them: transient kernel failure, device OOM, stuck/slow launch, hard death.
FAULT_KINDS = ("transient", "oom", "slow", "death")

#: Environment variable naming the default fault seed.
FAULT_SEED_ENV = "REPRO_FAULT_SEED"


# --------------------------------------------------------------------------- #
# failure taxonomy
# --------------------------------------------------------------------------- #
class DeviceFaultError(RuntimeError):
    """Base of all simulated device-side failures.

    These are the *retryable* class of errors: the work itself is sound, the
    device misbehaved.  The service's :class:`~repro.service.RetryPolicy`
    retries them (on a different device when the fleet has one); validation
    errors (``ValueError``/``TypeError``) are never retried.
    """


class TransientKernelError(DeviceFaultError):
    """A kernel launch failed transiently (analogue of a sporadic
    ``cudaErrorLaunchFailure``); an identical relaunch may succeed."""


class DeviceOOMError(DeviceFaultError, MemoryError):
    """An injected device out-of-memory failure (``cudaErrorMemoryAllocation``).

    Distinct from :class:`repro.gpu.memory.OutOfDeviceMemory`, which models a
    *deterministic* capacity overflow (a plan that genuinely does not fit and
    would not fit anywhere); this one is transient allocator pressure and is
    retryable.
    """


class DeviceLostError(DeviceFaultError):
    """The device is gone (``cudaErrorDeviceUnavailable`` / Xid hard fault).

    Raised by every operation on a dead device.  Retrying on the *same*
    device is futile; the service re-dispatches to a healthy one and the
    fleet evicts the device from placement.
    """


# --------------------------------------------------------------------------- #
# specs
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FaultSpec:
    """One pluggable fault behaviour.

    Parameters
    ----------
    kind : str
        One of :data:`FAULT_KINDS`: ``"transient"`` (kernel launch raises
        :class:`TransientKernelError`), ``"oom"`` (raises
        :class:`DeviceOOMError`), ``"slow"`` (multiplies the duration of
        stream operations by ``latency_multiplier`` -- a stuck/slow launch),
        or ``"death"`` (marks the device dead; every subsequent operation
        raises :class:`DeviceLostError`).
    rate : float
        Probability in ``[0, 1]`` that the spec fires at one eligible event.
        ``rate=1.0`` with ``after_events=k`` fires deterministically at the
        device's ``k``-th event, which is how hard-death scenarios are
        usually scripted.
    device_ids : tuple of int, optional
        Restrict the spec to these devices (``None`` = every device).
    latency_multiplier : float
        Slow-launch duration multiplier (``"slow"`` only; must be >= 1).
    after_events : int
        Number of events a device must have seen before the spec becomes
        eligible (lets schedules say "die mid-run", "degrade after warmup").
    """

    kind: str
    rate: float = 0.0
    device_ids: tuple = None
    latency_multiplier: float = 4.0
    after_events: int = 0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if not 0.0 <= float(self.rate) <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.kind == "slow" and self.latency_multiplier < 1.0:
            raise ValueError(
                f"latency_multiplier must be >= 1, got {self.latency_multiplier}"
            )
        if self.after_events < 0:
            raise ValueError(f"after_events must be >= 0, got {self.after_events}")
        if self.device_ids is not None:
            object.__setattr__(
                self, "device_ids", tuple(int(d) for d in self.device_ids)
            )

    def applies_to(self, device_id):
        """Whether the spec targets ``device_id``."""
        return self.device_ids is None or device_id in self.device_ids


@dataclass
class FaultStats:
    """Counters of the faults an injector actually fired."""

    events: int = 0
    injected: dict = field(default_factory=dict)  # kind -> count

    def record(self, kind):
        self.injected[kind] = self.injected.get(kind, 0) + 1


def fault_seed_from_env(default=0):
    """The fault seed from ``REPRO_FAULT_SEED`` (``default`` when unset)."""
    from ..core.env import fault_seed

    return fault_seed(default)


# --------------------------------------------------------------------------- #
# the injector
# --------------------------------------------------------------------------- #
class FaultInjector:
    """Deterministic, seedable fault source shared by a device fleet.

    The injector keeps one event counter per device; every hook call is one
    event.  Each eligible spec draws its own uniform deviate
    ``u = h(seed, device, event, spec) / 2^64`` and fires when ``u < rate``,
    so schedules are independent of dict ordering, wall clock and process --
    the substrate for the acceptance criterion that two runs with the same
    ``REPRO_FAULT_SEED`` produce identical failure counters.

    Parameters
    ----------
    specs : iterable of FaultSpec
        Fault behaviours, evaluated in order (first raising spec wins; all
        matching ``"slow"`` specs multiply).
    seed : int, optional
        Schedule seed; defaults to :func:`fault_seed_from_env`.
    """

    def __init__(self, specs=(), seed=None):
        self.specs = tuple(specs)
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"specs must be FaultSpec instances, got {spec!r}")
        self.seed = fault_seed_from_env() if seed is None else int(seed)
        self.stats = FaultStats()
        self._events = {}  # device_id -> event count
        self._dead = set()

    # ------------------------------------------------------------------ #
    # deterministic draws
    # ------------------------------------------------------------------ #
    def _draw(self, device_id, event_index, spec_index):
        """Uniform deviate in [0, 1), a pure function of its arguments."""
        token = f"{self.seed}:{device_id}:{event_index}:{spec_index}".encode()
        digest = hashlib.blake2b(token, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0**64

    def _next_event(self, device_id):
        event = self._events.get(device_id, 0)
        self._events[device_id] = event + 1
        self.stats.events += 1
        return event

    def _eligible(self, spec, device_id, event):
        return (spec.rate > 0.0 and spec.applies_to(device_id)
                and event >= spec.after_events)

    def _check_death(self, device):
        # Liveness is the device's own state (so Device.reset can revive the
        # hardware); the injector's _dead set only records kills it fired.
        if not getattr(device, "alive", True):
            raise DeviceLostError(
                f"device {device.device_id} is lost (hard fault)"
            )

    def _kill(self, device):
        self._dead.add(device.device_id)
        device.alive = False
        self.stats.record("death")
        raise DeviceLostError(
            f"device {device.device_id} suffered a hard fault and is lost"
        )

    # ------------------------------------------------------------------ #
    # hooks
    # ------------------------------------------------------------------ #
    def on_kernel_launch(self, device, name=""):
        """Kernel-launch hook (``device_sim`` stage execution).

        Raises :class:`DeviceLostError` on a dead device, may fire
        ``"death"``, ``"transient"`` or ``"oom"`` specs; returns ``None``
        when the launch proceeds.
        """
        self._check_death(device)
        event = self._next_event(device.device_id)
        for i, spec in enumerate(self.specs):
            if spec.kind not in ("transient", "oom", "death"):
                continue
            if not self._eligible(spec, device.device_id, event):
                continue
            if self._draw(device.device_id, event, i) >= spec.rate:
                continue
            if spec.kind == "death":
                self._kill(device)
            self.stats.record(spec.kind)
            if spec.kind == "transient":
                raise TransientKernelError(
                    f"transient launch failure of kernel {name!r} "
                    f"on device {device.device_id}"
                )
            raise DeviceOOMError(
                f"device {device.device_id} out of memory launching {name!r}"
            )

    def on_stream_op(self, device, engine, seconds, label=""):
        """Stream-enqueue hook (:meth:`repro.gpu.device.Stream.enqueue`).

        Raises :class:`DeviceLostError` on a dead device, may fire
        ``"death"`` specs, and returns the (possibly slow-launch-inflated)
        operation duration in seconds.
        """
        self._check_death(device)
        event = self._next_event(device.device_id)
        for i, spec in enumerate(self.specs):
            if spec.kind not in ("slow", "death"):
                continue
            if not self._eligible(spec, device.device_id, event):
                continue
            if self._draw(device.device_id, event, i) >= spec.rate:
                continue
            if spec.kind == "death":
                self._kill(device)
            self.stats.record("slow")
            seconds = seconds * spec.latency_multiplier
        return seconds

    # ------------------------------------------------------------------ #
    # wiring / lifecycle
    # ------------------------------------------------------------------ #
    def attach(self, devices):
        """Install this injector on every device in ``devices``."""
        for device in devices:
            device.fault_injector = self
        return self

    def is_dead(self, device_id):
        """Whether the injector has ever hard-killed ``device_id``.

        A historical record of ``"death"`` specs fired; the authoritative
        liveness state is ``Device.alive`` (a :meth:`Device.reset` revives).
        """
        return device_id in self._dead

    def reset(self):
        """Forget counters and dead devices (a fresh, identical schedule)."""
        self.stats = FaultStats()
        self._events = {}
        self._dead = set()

    def __repr__(self):  # pragma: no cover - debugging nicety
        kinds = ",".join(s.kind for s in self.specs) or "none"
        return (f"FaultInjector(seed={self.seed}, specs=[{kinds}], "
                f"events={self.stats.events}, dead={sorted(self._dead)})")
