"""Cost-model-driven search over plan parameters.

The paper hard-codes its plan parameters from Remark 1 / Remark 2 / Sec.
III-B: bins of 32x32 (2D) or 16x16x2 (3D), ``Msub = 1024`` and the
"SM-where-supported" method choice.  Those defaults are good on average but
not per problem -- GM beats every sorted method at very low density (Fig. 2),
the best bin geometry trades padded-bin write-back volume against subproblem
count, and ``Msub`` moves the load-balancing/launch trade-off.

:class:`Autotuner` searches those knobs the way FFTW/cuFFT plan-time tuning
does, but against the *simulated-GPU* cost model instead of wall-clock runs:

1. enumerate candidate configurations (spread method x bin shape x ``Msub``
   x threads-per-block, plus pass-through knobs for the stencil budget and
   execution backend) for one :class:`~repro.tuning.signature.TuningProblem`,
   pruning shared-memory-infeasible SM variants;
2. score each candidate with the same
   :func:`repro.metrics.modeling.model_cufinufft` pipeline the benchmark
   tables are built from (occupancy statistics come from the *actual* point
   coordinates when available, so clustered point sets tune differently from
   uniform ones);
3. optionally refine the top-``k`` model picks by *measured execution*: build
   a small real :class:`~repro.core.plan.Plan` per finalist, run it, and
   re-rank by the profiles an executed plan actually records (real subproblem
   splits and occupied-cell counts rather than scaled-histogram estimates);
4. persist the winner in a :class:`~repro.tuning.cache.TuningCache` keyed by
   the problem's :class:`~repro.tuning.signature.ProblemSignature`, so every
   later plan, pooled service request or benchmark sweep that lands in the
   same bucket reuses it.

The default configuration is always one of the candidates, so a tuned score
is never worse than the baseline under the model -- the search can only
recover the paper's defaults or improve on them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..core.binsort import SpreadStats, bin_sort, to_grid_coordinates
from ..core.gridsize import fine_grid_shape
from ..core.options import Opts, Precision, SpreadMethod
from ..gpu.device import V100_SPEC
from ..gpu.threadblock import LaunchConfigError, check_shared_memory_fit
from ..kernels.es_kernel import ESKernel
from .cache import SCHEMA_VERSION, TuningCache
from .signature import TuningProblem

__all__ = [
    "CandidateSpace",
    "TuningResult",
    "TunerStats",
    "Autotuner",
    "tune_opts",
    "default_autotuner",
    "TUNE_MODES",
]

#: Valid values of the ``tune=`` argument accepted across the stack.
TUNE_MODES = ("off", "model", "measure")

#: Per-dimension bin-shape candidates (the paper default is always included).
_BIN_CANDIDATES = {
    1: ((512,), (1024,), (4096,)),
    2: ((16, 16), (32, 32), (64, 64), (32, 16)),
    3: ((16, 16, 2), (16, 16, 4), (8, 8, 8), (32, 32, 2), (16, 8, 4)),
}

#: ``Msub`` candidates for the SM method (paper Remark 1 default included).
_MSUB_CANDIDATES = (256, 1024, 4096)

#: Threads-per-block candidates for the SM method (shared-atomic contention
#: scales with the number of resident lanes).
_TPB_CANDIDATES = (64, 128, 256)


@dataclass
class CandidateSpace:
    """The knob grid one tuning run enumerates.

    Every field is a tuple of allowed values; the cross product (pruned for
    irrelevant combinations -- bins/``Msub`` do not affect GM, ``Msub`` and
    threads-per-block only affect SM) is the candidate list.  ``stencil_budgets``
    and ``backends`` default to singletons carrying the base options' values:
    they do not move the modelled kernel time, but flow through to the tuned
    :class:`~repro.core.options.Opts` and can be expanded by callers that
    rank candidates by measured execution.
    """

    methods: tuple
    bin_shapes: tuple
    msubs: tuple = _MSUB_CANDIDATES
    threads_per_block: tuple = _TPB_CANDIDATES
    stencil_budgets: tuple = None
    backends: tuple = None

    @classmethod
    def default(cls, problem, base_opts):
        """The default grid for one problem (methods legal for its type)."""
        ndim = problem.ndim
        if problem.nufft_type == 2:
            # Interpolation has no SM analogue (paper Sec. III-B).
            methods = (SpreadMethod.GM, SpreadMethod.GM_SORT)
        else:
            methods = (SpreadMethod.GM, SpreadMethod.GM_SORT, SpreadMethod.SM)
        bins = list(_BIN_CANDIDATES[ndim])
        base_bins = base_opts.resolved_bin_shape(ndim)
        if base_bins not in bins:
            bins.insert(0, base_bins)
        return cls(
            methods=methods,
            bin_shapes=tuple(bins),
            stencil_budgets=(base_opts.stencil_budget,),
            backends=(base_opts.backend,),
        )


@dataclass
class TuningResult:
    """Outcome of one tuning run (or one cache hit).

    Attributes
    ----------
    signature_key : str
        Cache key of the problem bucket this result applies to.
    opts : dict
        Tuned option fields (``method``, ``bin_shape``, ``max_subproblem_size``,
        ``threads_per_block``, ``stencil_budget``, ``backend``) in
        JSON-serializable form.
    score_s : float
        Modelled objective seconds of the winning configuration.
    baseline_score_s : float
        Modelled objective seconds of the default (AUTO-resolved) config --
        always one of the candidates, so ``score_s <= baseline_score_s``.
    mode : str
        ``"model"`` or ``"measure"`` (how the winner was ranked).
    objective : str
        Timing key that was minimized (``"exec"`` or ``"total"``).
    n_candidates : int
        Number of configurations scored.
    from_cache : bool
        Whether this result was served from the tuning cache.
    measured_s : float or None
        Measured-refinement objective seconds of the winner (measure mode).
    """

    signature_key: str
    opts: dict
    score_s: float
    baseline_score_s: float
    mode: str
    objective: str = "exec"
    n_candidates: int = 0
    from_cache: bool = False
    measured_s: float = None

    @property
    def speedup(self):
        """Modelled baseline/tuned ratio (>= 1.0 means tuning helped)."""
        return self.baseline_score_s / self.score_s if self.score_s > 0 else 1.0

    def apply_to(self, base_opts, include_backend=False):
        """Merge the tuned fields into ``base_opts``, returning a new Opts.

        ``include_backend=False`` (the default used by ``Plan.set_pts``)
        leaves the execution backend untouched: a live plan has already
        bound its backend, and the default candidate space never proposes a
        different one anyway.
        """
        fields = {
            "method": SpreadMethod.parse(self.opts["method"]),
            "bin_shape": tuple(self.opts["bin_shape"]),
            "max_subproblem_size": int(self.opts["max_subproblem_size"]),
            "threads_per_block": int(self.opts["threads_per_block"]),
            "stencil_budget": int(self.opts["stencil_budget"]),
        }
        if include_backend:
            fields["backend"] = str(self.opts["backend"])
        return base_opts.copy(**fields)

    def record(self):
        """JSON-serializable cache record for this result."""
        return {
            "version": SCHEMA_VERSION,
            "opts": dict(self.opts),
            "score_s": float(self.score_s),
            "baseline_score_s": float(self.baseline_score_s),
            "mode": self.mode,
            "objective": self.objective,
            "n_candidates": int(self.n_candidates),
            "measured_s": self.measured_s,
        }

    @classmethod
    def from_record(cls, key, record):
        return cls(
            signature_key=key,
            opts=dict(record["opts"]),
            score_s=float(record["score_s"]),
            baseline_score_s=float(record["baseline_score_s"]),
            mode=record["mode"],
            objective=record.get("objective", "exec"),
            n_candidates=int(record.get("n_candidates", 0)),
            from_cache=True,
            measured_s=record.get("measured_s"),
        )


@dataclass
class TunerStats:
    """Counters of one :class:`Autotuner`'s lifetime."""

    tunings_computed: int = 0
    cache_hits: int = 0
    candidates_scored: int = 0
    plans_measured: int = 0


class Autotuner:
    """Plan-parameter autotuner over the simulated-GPU cost model.

    Parameters
    ----------
    cache : TuningCache, optional
        Persistent store of tuned configurations (a fresh in-memory cache by
        default).  Share one instance -- e.g. through a
        :class:`~repro.service.TransformService` -- so concurrent requests
        for the same problem signature share a single tuning run.
    objective : str
        Timing key to minimize: ``"exec"`` (the paper's amortized headline,
        default) or ``"total"`` (exec + setup, the one-shot serving view).
    max_sample : int
        Cap on the points actually sampled/bin-sorted for the occupancy
        statistics of each candidate bin shape.
    top_k : int
        Number of model-ranked finalists re-ranked by measured execution in
        ``"measure"`` mode.
    measure_sample : int
        Point count of the small real plans built for the measured pass.
    seed : int
        RNG seed of every sampling step (tuning is deterministic).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.tuning import Autotuner, TuningProblem
    >>> tuner = Autotuner()
    >>> result = tuner.tune(TuningProblem(1, (64, 64), 200_000, 1e-6, "single"))
    >>> result.speedup >= 1.0          # never worse than the paper defaults
    True
    >>> result2 = tuner.tune(TuningProblem(1, (64, 64), 210_000, 1e-6, "single"))
    >>> result2.from_cache             # same signature bucket: no re-search
    True
    """

    def __init__(self, cache=None, objective="exec", max_sample=1 << 14,
                 top_k=3, measure_sample=1 << 12, seed=0):
        if objective not in ("exec", "total"):
            raise ValueError(f"objective must be 'exec' or 'total', got {objective!r}")
        self.cache = cache if cache is not None else TuningCache()
        self.objective = objective
        self.max_sample = int(max_sample)
        self.top_k = max(1, int(top_k))
        self.measure_sample = int(measure_sample)
        self.seed = int(seed)
        self.stats = TunerStats()
        self._master = threading.Lock()
        self._inflight = {}

    # ------------------------------------------------------------------ #
    # public entry points
    # ------------------------------------------------------------------ #
    def tune(self, problem, mode="model", base_opts=None, space=None, spec=None):
        """Tune one problem; returns a :class:`TuningResult`.

        Concurrent callers tuning the same signature serialize on a
        per-signature lock: exactly one performs the search, the rest are
        served the cached entry it writes.

        Cached entries are reused regardless of the requested ``mode``
        (wisdom semantics: a record tuned in either mode is a valid tuned
        configuration for the signature); clear the cache to force a
        re-search in a different mode.

        Parameters
        ----------
        problem : TuningProblem
        mode : str
            ``"model"`` (cost-model scoring only) or ``"measure"`` (model
            scoring plus measured-execution re-ranking of the finalists).
        base_opts : Opts, optional
            Options the tuned fields are deviations from.
        space : CandidateSpace, optional
            Override the candidate grid.
        spec : DeviceSpec, optional
            Device the plan will run on (the paper's V100 by default):
            bounds SM shared-memory feasibility and the cost-model rates,
            and separates the cache entries of unlike devices.
        """
        if mode not in ("model", "measure"):
            raise ValueError(f"mode must be 'model' or 'measure', got {mode!r}")
        base_opts = self._base_opts(problem, base_opts)
        key = self._cache_key(problem, base_opts, spec)

        cached = self.cache.get(key)
        if cached is not None:
            self.stats.cache_hits += 1
            return TuningResult.from_record(key, cached)

        with self._master:
            lock = self._inflight.setdefault(key, threading.Lock())
        with lock:
            # Another thread may have finished the search while we waited.
            cached = self.cache.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                return TuningResult.from_record(key, cached)
            result = self._search(problem, mode, base_opts, space, key, spec)
            self.cache.put(key, result.record())
            self.stats.tunings_computed += 1
        with self._master:
            self._inflight.pop(key, None)
        return result

    def tuned_opts(self, problem, mode="model", base_opts=None,
                   include_backend=True, spec=None):
        """Tune and return ready-to-use :class:`~repro.core.options.Opts`."""
        base_opts = self._base_opts(problem, base_opts)
        result = self.tune(problem, mode=mode, base_opts=base_opts, spec=spec)
        return result.apply_to(base_opts, include_backend=include_backend)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _base_opts(self, problem, base_opts):
        if base_opts is None:
            return Opts(precision=problem.precision)
        if Precision.parse(problem.precision) is not base_opts.precision:
            return base_opts.copy(precision=problem.precision)
        return base_opts

    def _cache_key(self, problem, base_opts, spec=None):
        """Cache key: signature bucket + objective + the pass-through base
        fields a record would overwrite on apply (so a plan configured with a
        non-default stencil budget or backend never inherits another
        caller's) + the device, when it is not the default V100."""
        key = (f"{problem.signature().key()}.{self.objective}"
               f".sb{base_opts.stencil_budget}.be{base_opts.backend}")
        if spec is not None and spec.name != V100_SPEC.name:
            key += f".dev[{spec.name}]"
        return key

    def _candidates(self, problem, base_opts, space, spec=None):
        """Enumerate candidate field dicts, baseline first, pruned + deduped."""
        space = space if space is not None else CandidateSpace.default(problem, base_opts)
        precision = Precision.parse(problem.precision)
        kernel = ESKernel.from_tolerance(problem.eps, upsampfac=base_opts.upsampfac)
        stencil_budgets = space.stencil_budgets or (base_opts.stencil_budget,)
        backends = space.backends or (base_opts.backend,)

        baseline = {
            "method": base_opts.resolve_method(problem.nufft_type, problem.ndim,
                                               precision),
            "bin_shape": base_opts.resolved_bin_shape(problem.ndim),
            "max_subproblem_size": base_opts.max_subproblem_size,
            "threads_per_block": base_opts.threads_per_block,
            "stencil_budget": base_opts.stencil_budget,
            "backend": base_opts.backend,
        }
        if baseline["method"] is SpreadMethod.SM and not self._sm_fits(
            baseline["bin_shape"], kernel, precision, spec
        ):
            baseline["method"] = SpreadMethod.GM_SORT

        seen = set()
        candidates = []

        def add(fields):
            # One entry per (method, bins, msub, tpb, budget, backend) combo.
            for budget in stencil_budgets:
                for backend in backends:
                    full = dict(fields, stencil_budget=budget, backend=backend)
                    key = (full["method"].value, tuple(full["bin_shape"]),
                           int(full["max_subproblem_size"]),
                           int(full["threads_per_block"]), int(budget),
                           str(backend))
                    if key in seen:
                        continue
                    seen.add(key)
                    candidates.append(full)

        add(baseline)
        for method in space.methods:
            method = SpreadMethod.parse(method)
            if method is SpreadMethod.SM and problem.nufft_type == 2:
                continue
            if method is SpreadMethod.GM:
                # GM uses neither the bins nor the subproblem split.
                add(dict(baseline, method=method))
                continue
            for bins in space.bin_shapes:
                bins = tuple(int(b) for b in bins)
                if method is SpreadMethod.SM:
                    if not self._sm_fits(bins, kernel, precision, spec):
                        continue
                    for msub in space.msubs:
                        for tpb in space.threads_per_block:
                            add(dict(baseline, method=method, bin_shape=bins,
                                     max_subproblem_size=int(msub),
                                     threads_per_block=int(tpb)))
                else:
                    add(dict(baseline, method=method, bin_shape=bins))
        return candidates

    @staticmethod
    def _sm_fits(bin_shape, kernel, precision, spec=None):
        try:
            check_shared_memory_fit(
                bin_shape, kernel.width, precision.complex_itemsize,
                spec if spec is not None else V100_SPEC,
            )
        except LaunchConfigError:
            return False
        return True

    def _stats_for(self, problem, bin_shape, kernel, stats_cache):
        """Occupancy statistics for one candidate bin shape (memoized).

        Types 1/2 only; a type-3 candidate is priced by
        :func:`~repro.metrics.modeling.model_cufinufft`'s own composition-grid
        sampling.  When the problem carries actual coordinates, a subsample of
        them is bin-sorted (so clustered point sets tune differently from
        uniform ones); otherwise the named distribution is sampled.
        """
        bin_shape = tuple(bin_shape)
        if bin_shape in stats_cache:
            return stats_cache[bin_shape]
        fine_shape = fine_grid_shape(problem.n_modes, kernel.width)
        if problem.coords is not None:
            coords = [np.asarray(c, dtype=np.float64) for c in problem.coords]
            m = coords[0].shape[0]
            if m > self.max_sample:
                rng = np.random.default_rng(self.seed)
                sel = rng.choice(m, size=self.max_sample, replace=False)
                coords = [c[sel] for c in coords]
            grid_coords = [
                to_grid_coordinates(coords[d], fine_shape[d])
                for d in range(problem.ndim)
            ]
            stats = SpreadStats.from_binsort(
                bin_sort(grid_coords, fine_shape, bin_shape)
            )
            if stats.n_points != problem.n_points:
                stats = stats.scaled(problem.n_points)
        else:
            from ..metrics.modeling import sample_spread_stats

            stats = sample_spread_stats(
                problem.distribution, problem.n_points, fine_shape, bin_shape,
                rng=self.seed, max_sample=self.max_sample,
            )
        stats_cache[bin_shape] = stats
        return stats

    def score(self, problem, fields, base_opts=None, stats_cache=None,
              spec=None):
        """Modelled objective seconds of one candidate configuration.

        This is the exact scorer the search minimizes, exposed so benchmarks
        can evaluate the AUTO baseline and a tuned configuration through one
        identical code path.
        """
        base_opts = self._base_opts(problem, base_opts)
        stats_cache = stats_cache if stats_cache is not None else {}
        from ..metrics.modeling import model_cufinufft

        method = SpreadMethod.parse(fields["method"])
        opts = base_opts.copy(
            method=method,
            bin_shape=tuple(fields["bin_shape"]),
            max_subproblem_size=int(fields["max_subproblem_size"]),
            threads_per_block=int(fields["threads_per_block"]),
        )
        kernel = ESKernel.from_tolerance(problem.eps, upsampfac=opts.upsampfac)
        stats = None
        if problem.nufft_type != 3:
            stats = self._stats_for(problem, opts.resolved_bin_shape(problem.ndim),
                                    kernel, stats_cache)
        result = model_cufinufft(
            problem.nufft_type, problem.n_modes, problem.n_points, problem.eps,
            method=method, distribution=problem.distribution,
            precision=problem.precision, opts=opts, spec=spec, rng=self.seed,
            max_sample=self.max_sample, stats=stats, backend="device_sim",
        )
        return float(result.times[self.objective])

    def _search(self, problem, mode, base_opts, space, key, spec=None):
        candidates = self._candidates(problem, base_opts, space, spec)
        stats_cache = {}
        scored = []
        for fields in candidates:
            score = self.score(problem, fields, base_opts, stats_cache, spec)
            scored.append((score, fields))
            self.stats.candidates_scored += 1
        baseline_score = scored[0][0]
        ranked = sorted(scored, key=lambda pair: pair[0])

        measured_s = None
        if mode == "measure":
            finalists = ranked[: self.top_k]
            remeasured = []
            for score, fields in finalists:
                measured = self._measure(problem, fields, base_opts, spec)
                remeasured.append((measured, score, fields))
                self.stats.plans_measured += 1
            remeasured.sort(key=lambda triple: triple[0])
            measured_s, best_score, best_fields = remeasured[0]
        else:
            best_score, best_fields = ranked[0]

        return TuningResult(
            signature_key=key,
            opts={
                "method": best_fields["method"].value,
                "bin_shape": list(best_fields["bin_shape"]),
                "max_subproblem_size": int(best_fields["max_subproblem_size"]),
                "threads_per_block": int(best_fields["threads_per_block"]),
                "stencil_budget": int(best_fields["stencil_budget"]),
                "backend": str(best_fields["backend"]),
            },
            score_s=float(best_score),
            baseline_score_s=float(baseline_score),
            mode=mode,
            objective=self.objective,
            n_candidates=len(candidates),
            from_cache=False,
            measured_s=measured_s,
        )

    def _measure_modes(self, problem, m_small):
        """Mode grid of the measured pass: shrunk so the real plan stays small.

        The full grid is kept only while it is modest; a paper-scale problem
        is measured on a proportionally shrunk grid that preserves the point
        *density* (m_small points on the shrunk grid ~ n_points on the full
        one), so the occupancy-dependent effects being re-ranked survive the
        reduction while the fine-grid/FFT allocations stay laptop-sized.
        """
        n_total = float(np.prod(problem.n_modes))
        density = problem.n_points / n_total
        target_total = min(n_total, max(64.0, m_small / max(density, 1e-9)))
        if target_total >= n_total:
            return problem.n_modes
        factor = (target_total / n_total) ** (1.0 / problem.ndim)
        return tuple(
            min(n, max(8, int(round(n * factor)))) for n in problem.n_modes
        )

    def _measure(self, problem, fields, base_opts, spec=None):
        """Measured-execution refinement: run a small real plan and read the
        modelled objective its *recorded* profiles imply.

        The refinement replaces the scaled-histogram estimates (subproblem
        counts, occupied cells) with the quantities an executed plan actually
        computes, at a reduced point count (and a density-preserving reduced
        mode grid, see :meth:`_measure_modes`); the per-point cost is then
        scaled back to the full problem size.  The FFT share does not scale
        with the point count, so this is a ranking heuristic, not an
        absolute timing.
        """
        from ..core.plan import Plan
        from ..gpu.device import Device
        from ..workloads.distributions import make_distribution

        device = Device(spec=spec) if spec is not None else None
        m_small = int(min(problem.n_points, self.measure_sample))
        n_modes = self._measure_modes(problem, m_small)
        rng = np.random.default_rng(self.seed)
        opts = base_opts.copy(
            method=SpreadMethod.parse(fields["method"]),
            bin_shape=tuple(fields["bin_shape"]),
            max_subproblem_size=int(fields["max_subproblem_size"]),
            threads_per_block=int(fields["threads_per_block"]),
            stencil_budget=int(fields["stencil_budget"]),
            backend="auto",  # profiles are required for the readout
        )
        kernel = ESKernel.from_tolerance(problem.eps, upsampfac=opts.upsampfac)
        fine_shape = fine_grid_shape(n_modes, kernel.width)
        if problem.coords is not None:
            coords = [np.asarray(c, dtype=np.float64) for c in problem.coords]
            if coords[0].shape[0] > m_small:
                sel = rng.choice(coords[0].shape[0], size=m_small, replace=False)
                coords = [c[sel] for c in coords]
        else:
            coords = make_distribution(
                problem.distribution, m_small, problem.ndim,
                fine_shape=fine_shape, rng=rng,
            )

        if problem.nufft_type == 3:
            strengths = rng.standard_normal(m_small) \
                + 1j * rng.standard_normal(m_small)
            targets = [
                rng.uniform(-0.5 * n_modes[d], 0.5 * n_modes[d], m_small)
                for d in range(problem.ndim)
            ]
            with Plan(3, problem.ndim, eps=problem.eps, opts=opts,
                      device=device) as plan:
                plan.set_pts(*coords, **dict(zip(("s", "t", "u"), targets)))
                plan.execute(strengths)
                seconds = plan.timings()[self.objective]
        else:
            with Plan(problem.nufft_type, n_modes, eps=problem.eps,
                      opts=opts, device=device) as plan:
                plan.set_pts(*coords)
                if problem.nufft_type == 1:
                    strengths = rng.standard_normal(m_small) \
                        + 1j * rng.standard_normal(m_small)
                    plan.execute(strengths)
                else:
                    mode_data = rng.standard_normal(n_modes) \
                        + 1j * rng.standard_normal(n_modes)
                    plan.execute(mode_data)
                seconds = plan.timings()[self.objective]
        return float(seconds) * (problem.n_points / max(1, m_small))


# --------------------------------------------------------------------------- #
# module-level conveniences
# --------------------------------------------------------------------------- #
_default_tuner = None
_default_tuner_lock = threading.Lock()


def default_autotuner():
    """Process-wide shared :class:`Autotuner`.

    Backed by the on-disk cache named in the ``REPRO_TUNING_CACHE``
    environment variable when set, in-memory otherwise.  This is the tuner
    ``Plan(..., tune=...)`` uses when none is supplied.
    """
    global _default_tuner
    with _default_tuner_lock:
        if _default_tuner is None:
            from ..core.env import tuning_cache_path

            _default_tuner = Autotuner(cache=TuningCache(tuning_cache_path()))
        return _default_tuner


def tune_opts(nufft_type, n_modes, n_points, eps=1e-6, precision="single",
              mode="model", distribution="rand", tuner=None, base_opts=None):
    """Tune one problem and return ready-to-use plan options.

    This is the one-call autotuning entry point:

    >>> import numpy as np
    >>> from repro import Plan
    >>> from repro.tuning import tune_opts
    >>> opts = tune_opts(1, (64, 64), n_points=500_000, eps=1e-6)
    >>> plan = Plan(1, (64, 64), eps=1e-6, opts=opts)   # tuned configuration

    Parameters
    ----------
    nufft_type : int
        1, 2 or 3.
    n_modes : tuple of int
        Uniform mode counts (types 1/2) or, for type 3, the expected
        composition-grid size per dimension.
    n_points : int
        Expected number of nonuniform points.
    eps : float
        Requested tolerance.
    precision : str
        ``"single"`` or ``"double"``.
    mode : str
        ``"model"`` or ``"measure"``.
    distribution : str
        Named point distribution assumed for the occupancy statistics.
    tuner : Autotuner, optional
        Defaults to the shared :func:`default_autotuner`.
    base_opts : Opts, optional
        Options the tuned fields are deviations from.

    Returns
    -------
    Opts
    """
    tuner = tuner if tuner is not None else default_autotuner()
    problem = TuningProblem(
        nufft_type, tuple(int(n) for n in np.atleast_1d(n_modes)),
        n_points, eps, Precision.parse(precision).value,
        distribution=distribution,
    )
    return tuner.tuned_opts(problem, mode=mode, base_opts=base_opts)
