"""Persistent on-disk cache of tuned plan configurations.

The cache is the plan-time analogue of FFTW "wisdom": one JSON file mapping
:meth:`~repro.tuning.signature.ProblemSignature.key` strings to tuning
records, shared by every :class:`~repro.core.plan.Plan`, the
:class:`~repro.service.TransformService` plan pool and the benchmark harness
that point at the same path.

Robustness contract (pinned by ``tests/test_tuning.py``):

* a **corrupt or partially-written** cache file never raises -- loading falls
  back to an empty cache, records the problem in :attr:`TuningCache.load_error`
  and the next successful ``put`` rewrites the file wholesale;
* writes are **atomic** (temp file + ``os.replace``), so a reader can never
  observe a half-written file produced by this module;
* entries with an unknown schema version or malformed shape are skipped
  individually, so one bad record does not poison the rest;
* all operations are **thread-safe** -- concurrent service requests tuning
  the same signature coordinate through one lock.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading

__all__ = ["TuningCache", "SCHEMA_VERSION"]

#: Bump when the record layout changes; mismatched entries are ignored.
SCHEMA_VERSION = 1

#: Fields a well-formed tuning record must carry.
_REQUIRED_FIELDS = ("version", "opts", "score_s", "baseline_score_s", "mode")

#: Option fields a record's ``opts`` mapping must carry -- exactly what
#: :meth:`repro.tuning.TuningResult.apply_to` reads, so a field-truncated
#: entry is rejected here instead of raising ``KeyError`` inside
#: ``Plan.set_pts``.
REQUIRED_OPTS_FIELDS = (
    "method",
    "bin_shape",
    "max_subproblem_size",
    "threads_per_block",
    "stencil_budget",
    "backend",
)


def _valid_record(record):
    return (
        isinstance(record, dict)
        and all(f in record for f in _REQUIRED_FIELDS)
        and record["version"] == SCHEMA_VERSION
        and isinstance(record["opts"], dict)
        and all(f in record["opts"] for f in REQUIRED_OPTS_FIELDS)
    )


class TuningCache:
    """Thread-safe signature -> tuning-record store, optionally file-backed.

    Parameters
    ----------
    path : str or None
        JSON file to persist to.  ``None`` keeps the cache in memory only
        (the default for ad-hoc plans; services and benchmarks pass a path so
        tuned configurations survive across processes).

    Examples
    --------
    >>> from repro.tuning import TuningCache
    >>> cache = TuningCache()          # in-memory
    >>> cache.put("t1.2d.single.e-06.n7.rho+2.rand",
    ...           {"version": 1, "score_s": 1e-3, "baseline_score_s": 2e-3,
    ...            "mode": "model",
    ...            "opts": {"method": "SM", "bin_shape": [32, 32],
    ...                     "max_subproblem_size": 1024,
    ...                     "threads_per_block": 128,
    ...                     "stencil_budget": 33554432, "backend": "auto"}})
    >>> cache.get("t1.2d.single.e-06.n7.rho+2.rand")["opts"]["method"]
    'SM'
    >>> cache.get("no-such-signature") is None
    True
    """

    def __init__(self, path=None):
        self.path = os.fspath(path) if path is not None else None
        self._lock = threading.Lock()
        self._entries = {}
        #: Description of the last failed load (corrupt file), or None.
        self.load_error = None
        #: Number of entries skipped during load (bad schema/shape).
        self.skipped_entries = 0
        if self.path is not None:
            self._load()

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def _load(self):
        """Read the backing file, tolerating corruption and bad entries."""
        if not os.path.exists(self.path):
            return
        try:
            with open(self.path) as fh:
                raw = json.load(fh)
            if not isinstance(raw, dict) or not isinstance(raw.get("entries"), dict):
                raise ValueError("tuning cache file has no 'entries' mapping")
        except (OSError, ValueError) as exc:
            # Corrupt / truncated / unreadable file: fall back to model-scored
            # tuning on an empty cache rather than failing the transform.
            self.load_error = f"{type(exc).__name__}: {exc}"
            self._entries = {}
            return
        entries = {}
        for key, record in raw["entries"].items():
            if _valid_record(record):
                entries[key] = record
            else:
                self.skipped_entries += 1
        self._entries = entries

    def _save_locked(self):
        """Atomically rewrite the backing file (caller holds the lock)."""
        if self.path is None:
            return
        payload = {"schema": SCHEMA_VERSION, "entries": self._entries}
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=".tuning-", suffix=".json", dir=directory)
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def get(self, key):
        """Return the record stored for ``key`` (a signature key), or None."""
        with self._lock:
            record = self._entries.get(str(key))
            return dict(record) if record is not None else None

    def put(self, key, record):
        """Store ``record`` under ``key`` and persist (atomic) if file-backed."""
        if not _valid_record(record):
            raise ValueError(
                f"malformed tuning record for {key!r}: needs fields "
                f"{_REQUIRED_FIELDS} (with opts fields {REQUIRED_OPTS_FIELDS}) "
                f"at schema version {SCHEMA_VERSION}"
            )
        with self._lock:
            self._entries[str(key)] = dict(record)
            self._save_locked()

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return str(key) in self._entries

    def keys(self):
        """Snapshot of the cached signature keys."""
        with self._lock:
            return list(self._entries)

    def clear(self):
        """Drop every entry (and rewrite the backing file if any)."""
        with self._lock:
            self._entries = {}
            self._save_locked()
