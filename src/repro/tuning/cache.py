"""Persistent on-disk cache of tuned plan configurations.

The cache is the plan-time analogue of FFTW "wisdom": one JSON table mapping
:meth:`~repro.tuning.signature.ProblemSignature.key` strings to tuning
records, shared by every :class:`~repro.core.plan.Plan`, the
:class:`~repro.service.TransformService` plan pool and the benchmark harness
that point at the same path.

Since PR 10 the class is a thin adapter over the unified warm-state
:class:`~repro.artifacts.ArtifactStore` (record kind ``"tuning"``), so
tuning wisdom shares one persistence layer -- and one robustness contract --
with stencil caches, Horner fits and PSF kernels.  The on-disk layout is
unchanged, so existing ``REPRO_TUNING_CACHE`` files keep working.

Robustness contract (pinned by ``tests/test_tuning.py``):

* a **corrupt or partially-written** cache file never raises -- loading falls
  back to an empty cache, records the problem in :attr:`TuningCache.load_error`
  and the next successful ``put`` rewrites the file wholesale;
* writes are **atomic** (temp file + ``os.replace``), so a reader can never
  observe a half-written file produced by this module;
* entries with an unknown schema version or malformed shape are skipped
  individually, so one bad record does not poison the rest;
* all operations are **thread-safe** -- concurrent service requests tuning
  the same signature coordinate through one lock.
"""

from __future__ import annotations

import os

__all__ = ["TuningCache", "SCHEMA_VERSION"]

#: Bump when the record layout changes; mismatched entries are ignored.
SCHEMA_VERSION = 1

#: Fields a well-formed tuning record must carry.
_REQUIRED_FIELDS = ("version", "opts", "score_s", "baseline_score_s", "mode")

#: Option fields a record's ``opts`` mapping must carry -- exactly what
#: :meth:`repro.tuning.TuningResult.apply_to` reads, so a field-truncated
#: entry is rejected here instead of raising ``KeyError`` inside
#: ``Plan.set_pts``.
REQUIRED_OPTS_FIELDS = (
    "method",
    "bin_shape",
    "max_subproblem_size",
    "threads_per_block",
    "stencil_budget",
    "backend",
)


def _valid_record(record):
    return (
        isinstance(record, dict)
        and all(f in record for f in _REQUIRED_FIELDS)
        and record["version"] == SCHEMA_VERSION
        and isinstance(record["opts"], dict)
        and all(f in record["opts"] for f in REQUIRED_OPTS_FIELDS)
    )


class TuningCache:
    """Thread-safe signature -> tuning-record store, optionally file-backed.

    Parameters
    ----------
    path : str or None
        JSON file to persist to.  ``None`` keeps the cache in memory only
        (the default for ad-hoc plans; services and benchmarks pass a path so
        tuned configurations survive across processes).  Ignored when
        ``store`` has an on-disk root and no explicit path is wanted.
    store : ArtifactStore, optional
        Shared :class:`~repro.artifacts.ArtifactStore` to live in.  When
        given with ``path=None``, the wisdom table persists under the store's
        root (``<root>/tuning.json``); a private in-memory store backs the
        cache otherwise.

    Examples
    --------
    >>> from repro.tuning import TuningCache
    >>> cache = TuningCache()          # in-memory
    >>> cache.put("t1.2d.single.e-06.n7.rho+2.rand",
    ...           {"version": 1, "score_s": 1e-3, "baseline_score_s": 2e-3,
    ...            "mode": "model",
    ...            "opts": {"method": "SM", "bin_shape": [32, 32],
    ...                     "max_subproblem_size": 1024,
    ...                     "threads_per_block": 128,
    ...                     "stencil_budget": 33554432, "backend": "auto"}})
    >>> cache.get("t1.2d.single.e-06.n7.rho+2.rand")["opts"]["method"]
    'SM'
    >>> cache.get("no-such-signature") is None
    True
    """

    #: Record kind this adapter occupies in its artifact store.
    KIND = "tuning"

    def __init__(self, path=None, store=None):
        path = os.fspath(path) if path is not None else None
        if store is None:
            from ..artifacts import ArtifactStore

            store = ArtifactStore(root=None, kinds=False)
        self.store = store
        store.register_record_kind(self.KIND, SCHEMA_VERSION,
                                   validate=_valid_record, path=path)
        #: Effective backing file (None when purely in-memory).
        self.path = store._record_kinds[self.KIND].path

    # ------------------------------------------------------------------ #
    # load diagnostics (delegated to the store's tolerant table load)
    # ------------------------------------------------------------------ #
    @property
    def load_error(self):
        """Description of the last failed load (corrupt file), or None."""
        return self.store.record_load_error(self.KIND)

    @property
    def skipped_entries(self):
        """Number of entries skipped during load (bad schema/shape)."""
        return self.store.record_skipped(self.KIND)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def get(self, key):
        """Return the record stored for ``key`` (a signature key), or None."""
        return self.store.get_record(self.KIND, str(key))

    def put(self, key, record):
        """Store ``record`` under ``key`` and persist (atomic) if file-backed."""
        if not _valid_record(record):
            raise ValueError(
                f"malformed tuning record for {key!r}: needs fields "
                f"{_REQUIRED_FIELDS} (with opts fields {REQUIRED_OPTS_FIELDS}) "
                f"at schema version {SCHEMA_VERSION}"
            )
        self.store.put_record(self.KIND, str(key), record)

    def __len__(self):
        return self.store.record_count(self.KIND)

    def __contains__(self, key):
        return self.store.get_record(self.KIND, str(key), count=False) is not None

    def keys(self):
        """Snapshot of the cached signature keys."""
        return self.store.record_keys(self.KIND)

    def clear(self):
        """Drop every entry (and rewrite the backing file if any)."""
        self.store.clear_records(self.KIND)
