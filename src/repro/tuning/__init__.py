"""Cost-model-driven autotuning of plan parameters.

The paper fixes its plan parameters once and for all (Remark 1: 32x32 /
16x16x2 bins, ``Msub = 1024``; Remark 2 / Sec. III-B: the AUTO method
table).  This package searches those knobs per *problem signature* -- the
(type, dimension, density, precision, tolerance, distribution) bucket a
transform falls into -- in the spirit of FFTW/cuFFT plan-time tuning, scoring
candidates with the same simulated-GPU cost model that regenerates the
paper's tables, and caching winners on disk so every layer of the stack
reuses them:

* ``Plan(..., tune="model")`` tunes at ``set_pts`` time against the actual
  point coordinates;
* ``Plan(..., tune="measure")`` additionally re-ranks the model's finalists
  by executing small real plans;
* ``TransformService(tune=...)`` shares one :class:`Autotuner` across all
  pooled plans, so concurrent requests of one signature tune once;
* :func:`tune_opts` is the standalone one-call entry point;
* ``benchmarks/bench_autotune.py`` sweeps AUTO vs tuned across the
  1D/2D/3D x type-1/2/3 grid and gates the geomean in CI.

Quickstart
----------

>>> import numpy as np
>>> from repro import Plan
>>> rng = np.random.default_rng(0)
>>> x, y = rng.uniform(-np.pi, np.pi, (2, 20_000))
>>> c = rng.normal(size=20_000) + 1j * rng.normal(size=20_000)
>>> with Plan(1, (64, 64), eps=1e-6, tune="model") as plan:
...     _ = plan.set_pts(x, y)          # tunes, then bin-sorts
...     f = plan.execute(c)
...     tuned = plan.tuned
>>> tuned.speedup >= 1.0                # never worse than the paper defaults
True
>>> f.shape
(64, 64)
"""

from .cache import SCHEMA_VERSION, TuningCache
from .search import (
    TUNE_MODES,
    Autotuner,
    CandidateSpace,
    TunerStats,
    TuningResult,
    default_autotuner,
    tune_opts,
)
from .signature import ProblemSignature, TuningProblem, problem_signature

__all__ = [
    "Autotuner",
    "CandidateSpace",
    "ProblemSignature",
    "SCHEMA_VERSION",
    "TUNE_MODES",
    "TunerStats",
    "TuningCache",
    "TuningProblem",
    "TuningResult",
    "default_autotuner",
    "problem_signature",
    "tune_opts",
]
