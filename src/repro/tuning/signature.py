"""Problem signatures: the key space of the plan-parameter autotuner.

A tuned configuration is only worth persisting if it can be *found again* by
a later transform that is "the same problem" in the sense that matters to the
cost model.  The cost model's terms depend on the problem only through

* the transform type and dimensionality (which stage pipeline runs),
* the precision (FLOP rate, item sizes, shared-memory fit),
* the kernel width (a function of ``eps`` alone, Eq. (6)),
* the scale of the uniform grid (FFT cost, footprint vs cache sizes), and
* the point *density* rho = M / N_total and distribution (atomic contention,
  occupancy, subproblem counts).

:class:`ProblemSignature` therefore buckets exactly those quantities:
``eps`` by its decade, grid size and density by their binary order of
magnitude.  Problems landing in the same bucket share one cache entry, so a
service facing a stream of slightly-varying request sizes converges onto a
small, stable set of tuned configurations instead of re-tuning per request.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["ProblemSignature", "TuningProblem", "problem_signature"]


@dataclass(frozen=True)
class ProblemSignature:
    """Hashable bucket of the problem parameters the cost model is sensitive to.

    Attributes
    ----------
    nufft_type : int
        1, 2 or 3 (selects the stage pipeline being tuned).
    ndim : int
        Transform dimensionality (1-3).
    precision : str
        ``"single"`` or ``"double"``.
    eps_decade : int
        ``round(log10(eps))`` -- the kernel width is a function of this alone.
    log2_modes : int
        ``round(log2(geometric-mean mode count per dimension))``; for type 3
        the derived composition grid plays the role of the mode grid.
    log2_density : int
        ``round(log2(M / N_total))``, the paper's point density rho relative
        to the uniform grid.
    distribution : str
        Named point distribution the occupancy statistics assume (``"rand"``
        for real point sets, whose sampled histogram dominates the score).

    Examples
    --------
    >>> from repro.tuning import problem_signature
    >>> sig = problem_signature(1, (128, 128), 65536, 1e-6, "single")
    >>> sig.ndim, sig.eps_decade, sig.log2_density
    (2, -6, 2)
    >>> sig == problem_signature(1, (128, 128), 80000, 1e-6, "single")
    True
    """

    nufft_type: int
    ndim: int
    precision: str
    eps_decade: int
    log2_modes: int
    log2_density: int
    distribution: str = "rand"

    def key(self):
        """Stable string key used by the on-disk tuning cache."""
        return (
            f"t{self.nufft_type}.{self.ndim}d.{self.precision}"
            f".e{self.eps_decade:+d}.n{self.log2_modes}"
            f".rho{self.log2_density:+d}.{self.distribution}"
        )


@dataclass
class TuningProblem:
    """One concrete transform the autotuner is asked to tune.

    Unlike a :class:`ProblemSignature` (the cache bucket), a ``TuningProblem``
    carries the exact parameters -- and optionally the actual nonuniform
    coordinates -- so candidate configurations can be scored against the real
    occupancy histogram rather than a named distribution.

    Attributes
    ----------
    nufft_type, n_modes, n_points, eps, precision
        Mirror :class:`repro.core.plan.Plan`.  For type 3, ``n_modes`` is the
        rescaled composition grid the plan derives in ``set_pts`` (the grid
        the type-1-style spread lands on).
    distribution : str
        Named distribution used when ``coords`` is not given.
    coords : sequence of ndarray or None
        Actual nonuniform coordinates (one array per dimension, any length);
        a subsample is bin-sorted per candidate bin shape and rescaled to
        ``n_points``.
    """

    nufft_type: int
    n_modes: tuple
    n_points: int
    eps: float
    precision: str
    distribution: str = "rand"
    coords: object = None

    def __post_init__(self):
        self.n_modes = tuple(int(n) for n in self.n_modes)
        self.n_points = int(self.n_points)
        self.eps = float(self.eps)
        if self.nufft_type not in (1, 2, 3):
            raise ValueError(f"nufft_type must be 1, 2 or 3, got {self.nufft_type}")
        if len(self.n_modes) not in (1, 2, 3):
            raise ValueError(f"n_modes must have 1-3 entries, got {self.n_modes}")
        if self.n_points < 1:
            raise ValueError(f"n_points must be >= 1, got {self.n_points}")
        if not math.isfinite(self.eps) or self.eps <= 0.0:
            raise ValueError(f"eps must be a finite positive tolerance, got {self.eps}")

    @property
    def ndim(self):
        return len(self.n_modes)

    def signature(self):
        """The :class:`ProblemSignature` bucket this problem falls into.

        When actual coordinates are carried, the distribution tag gains a
        coarse *occupancy bucket* (``rand.occ0``, ``rand.occ-2``, ...)
        derived from the points themselves, so clustered and uniform point
        sets -- whose tuned configurations legitimately differ -- never
        alias one cache entry.
        """
        distribution = self.distribution
        if self.coords is not None:
            distribution = f"{self.distribution}.occ{self._occupancy_bucket()}"
        return problem_signature(
            self.nufft_type, self.n_modes, self.n_points, self.eps,
            self.precision, distribution=distribution,
        )

    def _occupancy_bucket(self):
        """Binary order of magnitude of observed vs uniform cell occupancy.

        A deterministic (strided) subsample of the coordinates is histogrammed
        on a coarse periodic grid; the fraction of occupied cells is compared
        with the expectation for uniform points, and the log2 of the ratio is
        the bucket (0 = uniform-like, increasingly negative = clustered).
        """
        coords = [np.asarray(c, dtype=np.float64) for c in self.coords]
        m = coords[0].shape[0]
        step = max(1, m // 4096)
        sample = [c[::step][:4096] for c in coords]
        n = sample[0].shape[0]
        cells_per_dim = {1: 1024, 2: 64, 3: 16}[self.ndim]
        cell_index = None
        stride = 1
        for c in sample:
            cell = np.floor(np.mod(c, 2.0 * np.pi)
                            * (cells_per_dim / (2.0 * np.pi))).astype(np.int64)
            np.clip(cell, 0, cells_per_dim - 1, out=cell)
            cell_index = cell * stride if cell_index is None else cell_index + cell * stride
            stride *= cells_per_dim
        total_cells = float(cells_per_dim ** self.ndim)
        occupied = float(np.unique(cell_index).shape[0])
        expected = total_cells * (1.0 - (1.0 - 1.0 / total_cells) ** n)
        ratio = occupied / max(expected, 1.0)
        return int(np.clip(round(math.log2(max(ratio, 2.0 ** -10))), -10, 1))


def problem_signature(nufft_type, n_modes, n_points, eps, precision,
                      distribution="rand"):
    """Bucket one transform's parameters into a :class:`ProblemSignature`.

    Parameters
    ----------
    nufft_type : int
        1, 2 or 3.
    n_modes : tuple of int
        Uniform mode counts (types 1/2) or the derived composition grid
        (type 3); its length gives the dimension.
    n_points : int
        Number of nonuniform points ``M``.
    eps : float
        Requested tolerance.
    precision : str or Precision
        ``"single"`` / ``"double"`` (any spelling ``Precision.parse`` takes).
    distribution : str
        Named point distribution.

    Returns
    -------
    ProblemSignature
    """
    from ..core.options import Precision

    n_modes = tuple(int(n) for n in n_modes)
    n_points = int(n_points)
    eps = float(eps)
    if n_points < 1:
        raise ValueError(f"n_points must be >= 1, got {n_points}")
    if not math.isfinite(eps) or eps <= 0.0:
        raise ValueError(f"eps must be a finite positive tolerance, got {eps}")
    n_total = float(np.prod(n_modes))
    geo_mean = n_total ** (1.0 / len(n_modes))
    return ProblemSignature(
        nufft_type=int(nufft_type),
        ndim=len(n_modes),
        precision=Precision.parse(precision).value,
        eps_decade=int(round(math.log10(eps))),
        log2_modes=int(round(math.log2(max(geo_mean, 1.0)))),
        log2_density=int(round(math.log2(max(n_points / n_total, 2.0 ** -20)))),
        distribution=str(distribution),
    )
