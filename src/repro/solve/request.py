"""Solve request/response types and the solve driver.

A :class:`SolveRequest` is one inverse-NUFFT problem: recover the image
modes ``f`` from nonuniform samples ``c`` by solving the density-compensated
normal equations ``A^H W A f = A^H W c`` with (preconditioned) CG, where
``A`` is the type-2 forward model over the request's trajectory.  The
:func:`execute_solve` driver runs one request end to end -- weights, adjoint
right-hand side, normal operator (Toeplitz-accelerated by default), CG -- on
plans that are either owned or leased from a
:class:`~repro.service.TransformService` pool, and is the single
implementation behind both the direct :func:`repro.solve.inverse_nufft`
convenience and the service's sharded ``solve`` path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.options import Precision, validate_isign
from .cg import pcg_solve
from .dcf import pipe_menon_weights
from .operators import (
    AdjointOperator,
    ForwardOperator,
    NormalOperator,
    validate_weights,
)
from .toeplitz import ToeplitzNormalOperator

__all__ = ["SolveRequest", "SolveResult", "execute_solve"]

_COORD_FIELDS = ("x", "y", "z")


@dataclass(eq=False)
class SolveRequest:
    """One inverse-NUFFT problem (eagerly validated, like a transform request).

    Parameters
    ----------
    n_modes : tuple of int
        Image mode counts ``(N1[, N2[, N3]])`` to reconstruct.
    data : ndarray
        Measured samples: shape ``(M,)`` for one right-hand side or
        ``(n_rhs, M)`` for a batch (e.g. coils/frames sharing the
        trajectory; the service shards batches across its fleet).
    x[, y[, z]] : ndarray
        Trajectory coordinates, one 1-D ``(M,)`` array per dimension, in
        ``[-pi, pi)``.
    eps : float
        NUFFT tolerance of every transform in the solve.
    precision : str
        ``"single"`` or ``"double"``.
    isign : int
        Exponent sign of the forward model (``+1`` default).
    backend : str
        Execution backend of every plan in the solve (``"auto"`` =
        ``device_sim``, which also records the modelled per-iteration cost;
        ``"cached"`` for pure-numerics throughput).
    weights : str, ndarray or None
        ``"pipe-menon"`` (default) computes density-compensation weights,
        an array supplies them, ``None`` solves the unweighted problem.
    normal : str
        ``"toeplitz"`` (default) applies ``A^H W A`` as the padded-FFT
        convolution; ``"explicit"`` applies the two NUFFTs per iteration.
    tol, maxiter : float, int
        CG stopping controls (relative residual / iteration cap).
    shift : float
        Tikhonov regularization ``(A^H W A + shift I)``.
    dcf_iters : int
        Pipe--Menon iterations when ``weights="pipe-menon"``.
    tag : object
        Opaque token echoed on the result.
    deadline_s : float, optional
        Modelled-time budget (seconds) for the solve's device work; a solve
        whose modelled ``exec`` cost exceeds it raises
        :class:`~repro.service.DeadlineExceededError`.
    """

    n_modes: tuple
    data: np.ndarray
    x: np.ndarray
    y: np.ndarray = None
    z: np.ndarray = None
    eps: float = 1e-6
    precision: str = "double"
    isign: int = 1
    backend: str = "auto"
    weights: object = "pipe-menon"
    normal: str = "toeplitz"
    tol: float = 1e-8
    maxiter: int = 50
    shift: float = 0.0
    dcf_iters: int = 8
    tag: object = None
    deadline_s: float = None

    def __post_init__(self):
        self.n_modes = tuple(int(n) for n in np.atleast_1d(self.n_modes))
        if len(self.n_modes) not in (1, 2, 3) or any(n < 1 for n in self.n_modes):
            raise ValueError(f"invalid n_modes {self.n_modes}")
        self.ndim = len(self.n_modes)
        coords = [getattr(self, f) for f in _COORD_FIELDS]
        for d in range(self.ndim):
            if coords[d] is None:
                raise ValueError(
                    f"{self.ndim}D solve requires coordinate arrays "
                    f"{', '.join(_COORD_FIELDS[:self.ndim])}"
                )
        for d in range(self.ndim, 3):
            if coords[d] is not None:
                raise ValueError(
                    f"{self.ndim}D solve takes only "
                    f"{', '.join(_COORD_FIELDS[:self.ndim])}"
                )
        parsed = []
        for d in range(self.ndim):
            arr = np.asarray(coords[d], dtype=np.float64)
            if arr.ndim != 1 or arr.shape[0] == 0:
                raise ValueError(
                    f"{_COORD_FIELDS[d]} must be a non-empty 1-D array"
                )
            if not np.all(np.isfinite(arr)):
                raise ValueError(
                    f"{_COORD_FIELDS[d]} contains non-finite values"
                )
            parsed.append(arr)
            setattr(self, _COORD_FIELDS[d], arr)
        m = parsed[0].shape[0]
        if any(c.shape[0] != m for c in parsed):
            raise ValueError("coordinate arrays must have equal length")
        self.n_points = m

        self.data = np.asarray(self.data)
        self.batched = self.data.ndim == 2
        if self.data.shape[-1:] != (m,) or self.data.ndim not in (1, 2):
            raise ValueError(
                f"data must have shape ({m},) or (n_rhs, {m}), got "
                f"{self.data.shape}"
            )
        if not np.all(np.isfinite(self.data)):
            raise ValueError("data contains non-finite values")
        self.n_rhs = self.data.shape[0] if self.batched else 1

        self.eps = float(self.eps)
        if not np.isfinite(self.eps) or self.eps <= 0:
            raise ValueError(f"eps must be a finite positive tolerance, got {self.eps}")
        self.precision = Precision.parse(self.precision).value
        if not isinstance(self.backend, str) or not self.backend.strip():
            raise ValueError(f"backend must be a non-empty string, got {self.backend!r}")
        self.backend = self.backend.strip().lower()
        self.isign = validate_isign(self.isign)
        if self.normal not in ("toeplitz", "explicit"):
            raise ValueError(
                f"normal must be 'toeplitz' or 'explicit', got {self.normal!r}"
            )
        if isinstance(self.weights, str):
            if self.weights != "pipe-menon":
                raise ValueError(
                    f"weights must be 'pipe-menon', an array or None, got "
                    f"{self.weights!r}"
                )
        else:
            self.weights = validate_weights(self.weights, m)
        self.tol = float(self.tol)
        self.maxiter = int(self.maxiter)
        if self.maxiter < 1:
            raise ValueError(f"maxiter must be >= 1, got {self.maxiter}")
        self.shift = float(self.shift)
        if self.shift < 0 or not np.isfinite(self.shift):
            raise ValueError(f"shift must be finite and >= 0, got {self.shift}")
        self.dcf_iters = int(self.dcf_iters)
        if self.deadline_s is not None:
            self.deadline_s = float(self.deadline_s)
            if not np.isfinite(self.deadline_s) or self.deadline_s <= 0.0:
                raise ValueError(
                    f"deadline_s must be a finite positive budget, "
                    f"got {self.deadline_s}"
                )

    def points(self):
        """The per-dimension coordinate arrays as a list."""
        return [getattr(self, _COORD_FIELDS[d]) for d in range(self.ndim)]

    def rhs_rows(self):
        """The data as a ``(n_rhs, M)`` view (batched or not)."""
        return self.data if self.batched else self.data[None]

    def replace_data(self, rows, tag=None, weights="inherit"):
        """A shard of this request carrying ``rows`` of the data batch.

        ``weights`` overrides the request's weights field (the service's
        sharded path resolves ``"pipe-menon"`` once and hands every shard
        the computed array); the default inherits this request's value.
        """
        kwargs = {f: getattr(self, f) for f in _COORD_FIELDS[:self.ndim]}
        if isinstance(weights, str) and weights == "inherit":
            weights = self.weights
        return SolveRequest(
            n_modes=self.n_modes, data=rows, eps=self.eps,
            precision=self.precision, isign=self.isign, backend=self.backend,
            weights=weights, normal=self.normal, tol=self.tol,
            maxiter=self.maxiter, shift=self.shift, dcf_iters=self.dcf_iters,
            tag=self.tag if tag is None else tag,
            deadline_s=self.deadline_s, **kwargs,
        )


@dataclass(eq=False)
class SolveResult:
    """Answer to one :class:`SolveRequest` (or one shard of it).

    Attributes
    ----------
    x : ndarray
        Reconstructed image(s): shape ``n_modes``, or ``(n_rhs, *n_modes)``
        for a batched request.
    residual_norms : list of list of float
        Per-RHS relative-residual history (entry 0 = initial residual).
    n_iter : list of int
        Per-RHS CG iteration counts.
    converged : list of bool
        Per-RHS convergence flags.
    weights : ndarray or None
        The density-compensation weights actually used.
    normal : str
        Normal-operator strategy that ran (``"toeplitz"`` / ``"explicit"``).
    device_ids : list of int
        Fleet devices the solve (or its shards) ran on (-1 = own device).
    modelled_seconds : dict
        Modelled cost decomposition: ``psf_build`` (one-time Toeplitz kernel,
        0 for explicit), ``rhs_build`` (adjoint of the data), ``per_iteration``,
        ``iterations`` (total across RHS), ``exec`` (everything combined) and
        the ``h2d_bytes``/``d2h_bytes`` moved.
    tag : object
        The request's tag, echoed back.
    """

    x: np.ndarray = None
    residual_norms: list = field(default_factory=list)
    n_iter: list = field(default_factory=list)
    converged: list = field(default_factory=list)
    weights: np.ndarray = None
    normal: str = "toeplitz"
    device_ids: list = field(default_factory=list)
    modelled_seconds: dict = field(default_factory=dict)
    tag: object = None


def execute_solve(request, service=None, device=None):
    """Run one :class:`SolveRequest` end to end on one device.

    With ``service`` given, every plan (DCF, adjoint RHS, PSF or explicit
    forward/adjoint) is leased from the service's pool -- repeated solves
    over the same trajectory geometry skip all planning.  ``device`` pins
    the leases (the service's sharded path sets it); otherwise the
    least-loaded device wins per lease.

    Returns
    -------
    SolveResult
    """
    if not isinstance(request, SolveRequest):
        raise TypeError(f"expected a SolveRequest, got {type(request).__name__}")
    points = request.points()
    common = dict(eps=request.eps, precision=request.precision,
                  isign=request.isign, backend=request.backend,
                  service=service, device=device)

    if isinstance(request.weights, str):
        weights = pipe_menon_weights(points, request.n_modes,
                                     n_iter=request.dcf_iters, eps=request.eps,
                                     isign=request.isign, service=service,
                                     device=device, backend=request.backend)
    else:
        weights = request.weights

    # One fused n_trans execute grids every right-hand side at once (the
    # PR-1 batched path), instead of one spread+FFT+deconvolve per row.
    rows = request.rhs_rows()
    adjoint = AdjointOperator(points, request.n_modes, n_trans=len(rows),
                              **common)
    try:
        stack = rows.astype(np.complex128)
        if weights is not None:
            stack = stack * weights[None, :]
        rhs = list(np.asarray(adjoint.apply(stack), dtype=np.complex128))
        rhs_build_s = adjoint.last_exec_seconds()
        device_ids = [getattr(adjoint.plan.device, "device_id", -1)]
    finally:
        adjoint.close()

    if request.normal == "toeplitz":
        normal = ToeplitzNormalOperator(points, request.n_modes,
                                        eps=request.eps,
                                        precision=request.precision,
                                        weights=weights, isign=request.isign,
                                        backend=request.backend,
                                        service=service, device=device)
        psf_build_s = normal.psf_build_seconds
        close_normal = lambda: None  # noqa: E731 - PSF plan already released
    else:
        forward = ForwardOperator(points, request.n_modes, **common)
        adj2 = AdjointOperator(points, request.n_modes, **common)
        normal = NormalOperator(forward, adj2, weights=weights)
        psf_build_s = 0.0
        close_normal = normal.close

    # No Jacobi preconditioner: the normal operator's diagonal is the
    # constant sum(w) (a scalar preconditioner is a CG no-op), so the
    # conditioning work lives entirely in the density-compensation weights
    # folded into the operator and right-hand side above.
    solutions, histories, iters, flags = [], [], [], []
    try:
        for b in rhs:
            result = pcg_solve(normal, b, preconditioner=None,
                               tol=request.tol, maxiter=request.maxiter,
                               shift=request.shift)
            solutions.append(result.x)
            histories.append(result.residual_norms)
            iters.append(result.n_iter)
            flags.append(result.converged)
        per_iter_s = normal.modelled_iteration_seconds()
    finally:
        close_normal()

    total_iters = int(sum(iters))
    cplx_size = Precision.parse(request.precision).complex_itemsize
    n_image = int(np.prod(request.n_modes))
    modelled = {
        "psf_build": psf_build_s,
        "rhs_build": rhs_build_s,
        "per_iteration": per_iter_s,
        "iterations": total_iters,
        "exec": psf_build_s + rhs_build_s + per_iter_s * total_iters,
        "h2d_bytes": int(rows.nbytes + sum(p.nbytes for p in points)),
        "d2h_bytes": int(len(rows) * n_image * cplx_size),
    }
    if request.deadline_s is not None and modelled["exec"] > request.deadline_s:
        from ..service.resilience import DeadlineExceededError

        raise DeadlineExceededError(
            f"solve's modelled device time {modelled['exec']:.6f}s exceeds "
            f"deadline_s={request.deadline_s}"
        )
    x = np.stack(solutions) if request.batched else solutions[0]
    cplx = Precision.parse(request.precision).complex_dtype
    return SolveResult(
        x=x.astype(cplx, copy=False),
        residual_norms=histories, n_iter=iters, converged=flags,
        weights=weights, normal=request.normal, device_ids=device_ids,
        modelled_seconds=modelled, tag=request.tag,
    )
