"""Forward/adjoint NUFFT operators for the inverse problem.

The inverse-NUFFT subsystem (see :mod:`repro.solve`) phrases image
reconstruction as the least-squares problem ``min_f ||A f - c||`` where the
*forward* operator ``A`` evaluates the image's Fourier series at the
nonuniform sample locations (a type-2 NUFFT) and its adjoint ``A^H``
grids the samples back onto the modes (a type-1 NUFFT with the opposite
exponent sign).  The wrappers here bind both to :class:`~repro.core.plan.Plan`
objects -- owned, borrowed, or leased from a
:class:`~repro.service.TransformService` pool -- and guarantee the adjoint
pairing ``<A x, y> == <x, A^H y>`` (machine precision up to the NUFFT
tolerance), which :func:`dot_test` verifies on random vectors.
"""

from __future__ import annotations

import numpy as np

from ..core.plan import Plan

__all__ = ["ForwardOperator", "AdjointOperator", "NormalOperator", "dot_test",
           "validate_weights"]


def validate_weights(weights, n_points):
    """Validate density-compensation weights: shape ``(M,)``, finite, >= 0.

    The single validator shared by :class:`NormalOperator`,
    :class:`~repro.solve.toeplitz.ToeplitzNormalOperator` and
    :class:`~repro.solve.request.SolveRequest`.  Returns the weights as a
    float64 array (``None`` passes through: the unweighted problem).
    """
    if weights is None:
        return None
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (int(n_points),):
        raise ValueError(
            f"weights must have shape ({int(n_points)},), got {weights.shape}"
        )
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise ValueError("weights must be finite and nonnegative")
    return weights


class _PlanOperator:
    """Common plan acquisition/ownership for the operator wrappers.

    Exactly one of three acquisition modes applies:

    * ``plan=`` -- borrow a caller-managed plan (``close`` is a no-op);
    * ``service=`` -- lease from the service's pool (``close`` releases);
    * neither -- construct and own a fresh plan (``close`` destroys).

    The nonuniform ``points`` are bound at construction (``set_pts``), so
    every ``apply`` reuses the plan's bin sort and stencil cache -- the whole
    reason iterative solvers want planned transforms.
    """

    _nufft_type = None

    def __init__(self, points, n_modes, eps=1e-6, precision="double", isign=1,
                 n_trans=1, plan=None, service=None, device=None, **plan_kwargs):
        self.points = [np.asarray(p, dtype=np.float64) for p in points]
        self.n_modes = tuple(int(n) for n in n_modes)
        self.ndim = len(self.n_modes)
        if len(self.points) != self.ndim:
            raise ValueError(
                f"got {len(self.points)} coordinate arrays for a "
                f"{self.ndim}D mode grid"
            )
        self.n_points = int(self.points[0].shape[0])
        self.eps = float(eps)
        self.isign = int(isign)
        plan_isign = self._plan_isign()
        self._service = None
        self._owned = False
        if plan is not None:
            if service is not None:
                raise ValueError("pass either plan= or service=, not both")
            if plan.nufft_type != self._nufft_type:
                raise ValueError(
                    f"operator needs a type-{self._nufft_type} plan, got "
                    f"type {plan.nufft_type}"
                )
            if plan.n_modes != self.n_modes:
                raise ValueError(
                    f"borrowed plan has modes {plan.n_modes}, operator "
                    f"needs {self.n_modes}"
                )
            if plan.isign != plan_isign:
                raise ValueError(
                    f"borrowed plan has isign={plan.isign:+d}; this operator "
                    f"(forward-model isign={self.isign:+d}) needs a plan "
                    f"with isign={plan_isign:+d}"
                )
            self.plan = plan
        elif service is not None:
            self.plan = service.lease_plan(
                self._nufft_type, self.n_modes, n_trans=n_trans, eps=self.eps,
                precision=precision, isign=plan_isign, device=device,
                **plan_kwargs,
            )
            self._service = service
        else:
            self.plan = Plan(self._nufft_type, self.n_modes, n_trans=n_trans,
                             eps=self.eps, precision=precision,
                             isign=plan_isign, device=device, **plan_kwargs)
            self._owned = True
        # A failing set_pts must not leak the plan we just acquired: give a
        # lease back / destroy an owned plan before re-raising (a borrowed
        # plan stays the caller's problem, with its old points intact).
        try:
            self.plan.set_pts(*self.points)
        except BaseException:
            self.close()
            raise

    def _plan_isign(self):
        raise NotImplementedError

    def apply(self, vec, out=None):
        """Apply the operator to one vector (or an ``n_trans`` stack)."""
        return self.plan.execute(vec, out=out)

    __call__ = apply

    def last_exec_seconds(self):
        """Modelled kernel seconds of the most recent :meth:`apply`.

        Zero when the plan's backend records no profiles (``cached`` /
        ``reference``) or before the first apply.
        """
        pipeline = self.plan._exec_pipeline
        if pipeline is None:
            return 0.0
        return self.plan.cost_model.pipeline_times(
            pipeline, contention_factor=self.plan.device.contention_factor
        )["exec"]

    def close(self):
        """Release the plan: destroy if owned, give back if leased."""
        if self._service is not None:
            self._service.release_plan(self.plan)
            self._service = None
        elif self._owned:
            self.plan.destroy()
            self._owned = False

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


class ForwardOperator(_PlanOperator):
    """The forward model ``A``: image modes -> nonuniform samples.

    ``(A f)_j = sum_k f_k exp(isign i k . x_j)`` -- a type-2 NUFFT with the
    operator's ``isign`` (``+1`` by default).  ``apply`` maps an array of
    shape ``n_modes`` (modes ascending from ``-N//2`` per axis) to the
    ``(M,)`` sample values.

    Parameters
    ----------
    points : sequence of ndarray
        Per-dimension sample coordinates in ``[-pi, pi)``, each ``(M,)``.
    n_modes : tuple of int
        Image mode counts ``(N1[, N2[, N3]])``.
    eps, precision, isign
        NUFFT tolerance, working precision and exponent sign of the forward
        model.
    plan, service, device, **plan_kwargs
        Plan acquisition (see :class:`_PlanOperator`): borrow ``plan=``,
        lease from ``service=``, or own a fresh plan (extra kwargs forwarded
        to :class:`~repro.core.plan.Plan`).
    """

    _nufft_type = 2

    def _plan_isign(self):
        return self.isign


class AdjointOperator(_PlanOperator):
    """The adjoint ``A^H``: nonuniform samples -> image modes.

    ``(A^H c)_k = sum_j c_j exp(-isign i k . x_j)`` -- a type-1 NUFFT with
    the *opposite* sign of the forward operator, so ``<A x, y> == <x, A^H y>``
    holds by construction.  ``isign`` here names the sign of the *forward*
    model this operator is adjoint to (``+1`` by default), matching
    :class:`ForwardOperator` so the pair is always built with the same value.
    ``apply`` maps ``(M,)`` sample values to an ``n_modes`` image.
    """

    _nufft_type = 1

    def _plan_isign(self):
        return -self.isign


class NormalOperator:
    """Explicit normal operator ``A^H W A`` (the baseline the Toeplitz path beats).

    Applies the forward and adjoint NUFFTs back to back, with an optional
    diagonal weighting ``W`` (density-compensation weights) in between:
    ``apply(f) = A^H (w * (A f))``.  Hermitian positive semi-definite by
    construction, so it can drive :func:`repro.solve.cg_solve` directly --
    at the cost of a spread *and* an interpolation per iteration, which is
    exactly what :class:`repro.solve.ToeplitzNormalOperator` eliminates.

    Parameters
    ----------
    forward : ForwardOperator
    adjoint : AdjointOperator
        Must share the forward operator's ``isign`` and point set.
    weights : ndarray or None
        Nonnegative per-sample weights ``w_j`` (``None`` = unweighted).
    """

    def __init__(self, forward, adjoint, weights=None):
        if forward.isign != adjoint.isign:
            raise ValueError(
                f"forward (isign={forward.isign:+d}) and adjoint "
                f"(isign={adjoint.isign:+d}) operators disagree on the "
                "forward-model sign"
            )
        if forward.n_modes != adjoint.n_modes or forward.n_points != adjoint.n_points:
            raise ValueError("forward and adjoint operators disagree on geometry")
        self.forward = forward
        self.adjoint = adjoint
        self.n_modes = forward.n_modes
        self.weights = validate_weights(weights, forward.n_points)

    def apply(self, f):
        """``A^H (w * (A f))`` for one image ``f`` of shape ``n_modes``."""
        samples = self.forward.apply(f)
        if self.weights is not None:
            samples = samples * self.weights
        return self.adjoint.apply(samples)

    __call__ = apply

    def modelled_iteration_seconds(self):
        """Modelled kernel seconds of one apply (after at least one apply).

        The sum of the forward and adjoint plans' most recent modelled exec
        times -- the per-CG-iteration cost the Toeplitz operator is gated
        against in ``bench_solve``.
        """
        return self.forward.last_exec_seconds() + self.adjoint.last_exec_seconds()

    def close(self):
        """Close both wrapped operators."""
        self.forward.close()
        self.adjoint.close()


def dot_test(forward, adjoint, rng=0, n_trials=3):
    """Adjoint consistency check: max relative error of ``<Ax,y> - <x,A^H y>``.

    Draws ``n_trials`` random image/sample vector pairs and compares the two
    inner products; the result is bounded by a small multiple of the NUFFT
    tolerance (machine epsilon for exact transforms).  Double-precision
    operator pairs at tight ``eps`` pass below ``1e-12``.

    Parameters
    ----------
    forward : ForwardOperator
    adjoint : AdjointOperator
        The pair to test (same points, modes and ``isign``).
    rng : seed or Generator
    n_trials : int

    Returns
    -------
    float
        ``max_t |<A x, y> - <x, A^H y>| / (||A x|| ||y||)`` over the trials.
    """
    rng = np.random.default_rng(rng)
    worst = 0.0
    for _ in range(int(n_trials)):
        x = (rng.standard_normal(forward.n_modes)
             + 1j * rng.standard_normal(forward.n_modes))
        y = (rng.standard_normal(forward.n_points)
             + 1j * rng.standard_normal(forward.n_points))
        ax = np.asarray(forward.apply(x), dtype=np.complex128)
        aty = np.asarray(adjoint.apply(y), dtype=np.complex128)
        lhs = np.vdot(ax.ravel(), y.ravel())
        rhs = np.vdot(x.ravel(), aty.ravel())
        scale = np.linalg.norm(ax) * np.linalg.norm(y)
        if scale == 0.0:
            continue
        worst = max(worst, abs(lhs - rhs) / scale)
    return worst
