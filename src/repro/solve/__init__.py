"""Inverse NUFFT: adjoint operators and Toeplitz-accelerated CG solves.

The paper's transforms are forward-only; this subsystem solves the *inverse*
problem ``min_f ||A f - c||`` that MRI/tomography reconstruction (and the
M-TIP application's merging step) actually poses, where ``A`` is a type-2
NUFFT over a nonuniform trajectory and ``A^H`` its type-1 adjoint:

* :class:`ForwardOperator` / :class:`AdjointOperator` -- plan-backed
  operator pair with a dot-test adjoint guarantee (:func:`dot_test`);
* :func:`pipe_menon_weights` -- density-compensation weights, the diagonal
  preconditioner that makes ``A^H W A ~= I`` on radial/spiral trajectories;
* :class:`ToeplitzNormalOperator` -- applies ``A^H W A`` as one padded-FFT
  convolution with a precomputed point-spread kernel (a single type-1 call),
  so the CG inner loop never touches spread/interp kernels;
* :func:`cg_solve` / :func:`pcg_solve` -- conjugate gradients with residual
  history and tolerance stopping;
* :class:`SolveRequest` / :func:`execute_solve` / :func:`inverse_nufft` --
  the one-call driver, also served (pooled plans, fleet sharding) by
  :meth:`repro.service.TransformService.solve`.

Quickstart::

    from repro.solve import inverse_nufft
    from repro.workloads import radial_points

    kx, ky = radial_points(20_000, n_spokes=128)
    result = inverse_nufft([kx, ky], samples, (64, 64), eps=1e-6)
    image = result.x            # (64, 64) modes; result.residual_norms etc.
"""

from __future__ import annotations

from .cg import CGResult, cg_solve, pcg_solve
from .dcf import pipe_menon_weights
from .operators import AdjointOperator, ForwardOperator, NormalOperator, dot_test
from .request import SolveRequest, SolveResult, execute_solve
from .toeplitz import ToeplitzNormalOperator

__all__ = [
    "ForwardOperator",
    "AdjointOperator",
    "NormalOperator",
    "ToeplitzNormalOperator",
    "CGResult",
    "cg_solve",
    "pcg_solve",
    "pipe_menon_weights",
    "dot_test",
    "SolveRequest",
    "SolveResult",
    "execute_solve",
    "inverse_nufft",
]


def inverse_nufft(points, data, n_modes, **kwargs):
    """Solve ``min_f ||A f - c||`` over a nonuniform trajectory in one call.

    Builds a :class:`SolveRequest` from the arguments and runs
    :func:`execute_solve` on owned plans (no service): Pipe--Menon weights,
    Toeplitz-accelerated normal operator and preconditioned CG by default.

    Parameters
    ----------
    points : sequence of ndarray
        Per-dimension trajectory coordinates, each ``(M,)``, in
        ``[-pi, pi)``.
    data : ndarray
        Samples ``c``: shape ``(M,)``, or ``(n_rhs, M)`` for a batch
        sharing the trajectory.
    n_modes : tuple of int
        Image mode counts to reconstruct.
    **kwargs
        Any :class:`SolveRequest` field (``eps=``, ``precision=``,
        ``isign=``, ``weights=``, ``normal=``, ``tol=``, ``maxiter=``,
        ``shift=``, ...).

    Returns
    -------
    SolveResult
        ``result.x`` holds the reconstructed mode array(s);
        ``result.residual_norms`` the per-RHS CG history.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.solve import inverse_nufft
    >>> from repro.workloads import rand_points
    >>> from repro.core.exact import nudft_type2
    >>> rng = np.random.default_rng(0)
    >>> kx, ky = rand_points(4000, 2, rng=1)       # full-coverage trajectory
    >>> f_true = rng.standard_normal((16, 16)) + 1j * rng.standard_normal((16, 16))
    >>> c = nudft_type2([kx, ky], f_true)          # simulated measurements
    >>> result = inverse_nufft([kx, ky], c, (16, 16), eps=1e-10, tol=1e-11)
    >>> result.converged
    [True]
    >>> bool(np.linalg.norm(result.x - f_true) / np.linalg.norm(f_true) < 1e-8)
    True
    """
    points = list(points)
    coords = dict(zip(("x", "y", "z"), points))
    request = SolveRequest(n_modes=n_modes, data=data, **coords, **kwargs)
    return execute_solve(request)
