"""Density-compensation weights (Pipe--Menon iteration).

Nonuniform trajectories oversample parts of k-space (radial and spiral
trajectories pile samples near the origin), so the unweighted adjoint
``A^H c`` blurs: the normal operator ``A^H A`` is far from the identity.
Density-compensation function (DCF) weights ``w_j`` fix this by making the
weighted quadrature ``sum_j w_j e^{-i l.x_j}`` approximate the continuous
integral ``delta_{l,0}`` -- equivalently, flattening the point-spread
function of ``A^H W A`` to a near-delta.  The classic Pipe--Menon fixed
point iterates ``w <- w / (P w)`` where ``P`` is the sampling PSF evaluated
*at the sample locations*, here computed as one forward/adjoint NUFFT pair
per iteration.

Used by the solve layer both as the diagonal (data-domain) preconditioner of
the weighted normal equations ``A^H W A f = A^H W c`` and to build the
Toeplitz kernel, so the CG inner loop converges in a handful of iterations
on radial/spiral trajectories instead of crawling.
"""

from __future__ import annotations

import numpy as np

from .operators import AdjointOperator, ForwardOperator

__all__ = ["pipe_menon_weights"]


def pipe_menon_weights(points, n_modes, n_iter=8, eps=1e-6, isign=1,
                       w0=None, service=None, device=None, backend="cached"):
    """Pipe--Menon density-compensation weights for one trajectory.

    Parameters
    ----------
    points : sequence of ndarray
        Per-dimension sample coordinates, each ``(M,)``, in ``[-pi, pi)``.
    n_modes : tuple of int
        Image mode counts the reconstruction targets.
    n_iter : int
        Fixed-point iterations (a handful suffices; Pipe & Menon report
        convergence in <= ~10).
    eps : float
        NUFFT tolerance of the PSF applications (modest accuracy is fine --
        the weights feed a preconditioner, not the solution).
    isign : int
        Forward-model exponent sign (weights are sign-invariant, but the
        plans are keyed by it).
    w0 : ndarray, optional
        Initial weights (uniform by default).
    service : TransformService, optional
        Lease the two PSF plans from this service's pool instead of building
        throwaway plans.
    device : Device, optional
        Device for owned/leased plans.
    backend : str
        Execution backend of the PSF plans (``"cached"`` by default: the
        weights loop is pure numerics, no profiling needed).  Callers going
        through a service pass their solve's backend so the leased plans
        share the pool key with the solve's other plans.

    Returns
    -------
    ndarray, shape (M,), float64
        Positive weights normalized to ``sum(w) == 1``, so the weighted
        normal operator's diagonal ``t_0 = sum_j w_j`` is 1 and
        ``A^H W A ~= I`` on well-sampled trajectories.
    """
    points = [np.asarray(p, dtype=np.float64) for p in points]
    m = points[0].shape[0]
    n_iter = int(n_iter)
    if n_iter < 1:
        raise ValueError(f"n_iter must be >= 1, got {n_iter}")
    if w0 is None:
        w = np.full(m, 1.0 / m)
    else:
        w = np.asarray(w0, dtype=np.float64).copy()
        if w.shape != (m,):
            raise ValueError(f"w0 must have shape ({m},), got {w.shape}")
        if np.any(w <= 0) or not np.all(np.isfinite(w)):
            raise ValueError("w0 must be finite and positive")

    kwargs = dict(eps=eps, precision="double", isign=isign, service=service,
                  device=device, backend=backend)
    forward = ForwardOperator(points, n_modes, **kwargs)
    adjoint = AdjointOperator(points, n_modes, **kwargs)
    try:
        for _ in range(n_iter):
            # P w at the sample locations: grid the weights, re-evaluate at
            # the points.  Real and positive in exact arithmetic; the tiny
            # imaginary part is NUFFT noise.
            psf_at_samples = np.abs(forward.apply(adjoint.apply(
                w.astype(np.complex128))))
            floor = max(np.max(psf_at_samples), np.finfo(np.float64).tiny)
            np.maximum(psf_at_samples, 1e-12 * floor, out=psf_at_samples)
            w = w / psf_at_samples
    finally:
        forward.close()
        adjoint.close()
    total = float(np.sum(w))
    if not np.isfinite(total) or total <= 0:
        raise RuntimeError("Pipe-Menon iteration diverged (non-finite weights)")
    return w / total
