"""Conjugate-gradient solvers for the (Hermitian PSD) normal equations.

``cg_solve`` / ``pcg_solve`` iterate ``T f = b`` where ``T`` is either the
explicit :class:`~repro.solve.operators.NormalOperator` (``A^H W A`` via two
NUFFTs per iteration) or the FFT-only
:class:`~repro.solve.toeplitz.ToeplitzNormalOperator`, and
``b = A^H (w * c)`` is the density-compensated adjoint of the measured
samples.  The solvers are operator-agnostic: anything with an ``apply(x)``
method (or any callable) over ``n_modes``-shaped complex arrays works.

Stopping: iteration ends when the relative residual ``||r|| / ||b||`` drops
to ``tol`` or ``maxiter`` is reached; the full residual history is returned
for convergence plots (the ``bench_solve`` accuracy gate compares final
residuals between the Toeplitz and explicit paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CGResult", "cg_solve", "pcg_solve"]


@dataclass
class CGResult:
    """Outcome of one (P)CG solve.

    Attributes
    ----------
    x : ndarray
        The solution iterate (shape ``n_modes``, complex).
    residual_norms : list of float
        Relative residuals ``||r_i|| / ||b||``, entry 0 being the initial
        residual (1.0 for a zero initial guess).
    n_iter : int
        Iterations performed.
    converged : bool
        Whether the tolerance was met within ``maxiter``.
    tol : float
        The requested relative-residual tolerance.
    """

    x: np.ndarray
    residual_norms: list = field(default_factory=list)
    n_iter: int = 0
    converged: bool = False
    tol: float = 0.0


def _as_apply(operator):
    if callable(getattr(operator, "apply", None)):
        return operator.apply
    if callable(operator):
        return operator
    raise TypeError(
        f"operator must expose .apply(x) or be callable, got "
        f"{type(operator).__name__}"
    )


def _as_precondition(preconditioner):
    if preconditioner is None:
        return lambda r: r
    if callable(getattr(preconditioner, "apply", None)):
        return preconditioner.apply
    if callable(preconditioner):
        return preconditioner
    diag = np.asarray(preconditioner)
    if not np.all(np.isfinite(diag)):
        raise ValueError("diagonal preconditioner must be finite")
    return lambda r: diag * r


def pcg_solve(operator, rhs, preconditioner=None, x0=None, tol=1e-8,
              maxiter=100, shift=0.0, callback=None):
    """Preconditioned conjugate gradients on a Hermitian PSD operator.

    Parameters
    ----------
    operator : object with ``apply(x)`` or callable
        The system operator ``T`` (e.g. a Toeplitz or explicit normal
        operator).  Must be Hermitian positive semi-definite.
    rhs : ndarray
        Right-hand side ``b`` (e.g. ``A^H (w * c)``), any shape; the solve
        runs over the flattened inner product.
    preconditioner : None, ndarray, callable, or object with ``apply``
        ``M^{-1}``: ``None`` for plain CG, an array for a diagonal (Jacobi)
        preconditioner applied elementwise, or a callable applying
        ``M^{-1} r``.  With Pipe--Menon density-compensation weights folded
        into the operator, the remaining diagonal is a constant scaling (see
        :meth:`~repro.solve.toeplitz.ToeplitzNormalOperator.diagonal`).
    x0 : ndarray, optional
        Initial iterate (zero by default).
    tol : float
        Relative-residual stopping tolerance ``||r|| <= tol * ||b||``.
    maxiter : int
        Iteration cap.
    shift : float
        Tikhonov term: solves ``(T + shift I) x = b`` (0 by default), the
        usual regularization for undersampled trajectories.
    callback : callable, optional
        ``callback(i, x, relres)`` after every iteration.

    Returns
    -------
    CGResult
    """
    apply_op = _as_apply(operator)
    apply_m = _as_precondition(preconditioner)
    shift = float(shift)
    if shift < 0:
        raise ValueError(f"shift must be >= 0, got {shift}")
    tol = float(tol)
    maxiter = int(maxiter)

    b = np.asarray(rhs, dtype=np.complex128)
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return CGResult(x=np.zeros_like(b), residual_norms=[0.0],
                        n_iter=0, converged=True, tol=tol)

    def matvec(v):
        out = np.asarray(apply_op(v), dtype=np.complex128)
        return out + shift * v if shift else out

    if x0 is None:
        x = np.zeros_like(b)
        r = b.copy()
    else:
        x = np.asarray(x0, dtype=np.complex128).copy()
        if x.shape != b.shape:
            raise ValueError(f"x0 shape {x.shape} does not match rhs {b.shape}")
        r = b - matvec(x)

    history = [float(np.linalg.norm(r)) / b_norm]
    if history[0] <= tol:
        return CGResult(x=x, residual_norms=history, n_iter=0,
                        converged=True, tol=tol)

    z = np.asarray(apply_m(r), dtype=np.complex128)
    p = z.copy()
    rz = float(np.real(np.vdot(r.ravel(), z.ravel())))
    converged = False
    n_iter = 0
    for i in range(maxiter):
        q = matvec(p)
        pq = float(np.real(np.vdot(p.ravel(), q.ravel())))
        if pq <= 0.0 or rz == 0.0:
            # Loss of positive-definiteness at the numerical floor: the
            # iterate cannot improve further, stop with what we have.
            break
        alpha = rz / pq
        x = x + alpha * p
        r = r - alpha * q
        n_iter = i + 1
        relres = float(np.linalg.norm(r)) / b_norm
        history.append(relres)
        if callback is not None:
            callback(n_iter, x, relres)
        if relres <= tol:
            converged = True
            break
        z = np.asarray(apply_m(r), dtype=np.complex128)
        rz_new = float(np.real(np.vdot(r.ravel(), z.ravel())))
        p = z + (rz_new / rz) * p
        rz = rz_new
    return CGResult(x=x, residual_norms=history, n_iter=n_iter,
                    converged=converged, tol=tol)


def cg_solve(operator, rhs, x0=None, tol=1e-8, maxiter=100, shift=0.0,
             callback=None):
    """Plain conjugate gradients: :func:`pcg_solve` without a preconditioner."""
    return pcg_solve(operator, rhs, preconditioner=None, x0=x0, tol=tol,
                     maxiter=maxiter, shift=shift, callback=callback)
