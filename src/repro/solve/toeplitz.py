"""Toeplitz-accelerated normal operator: ``A^H W A`` as one padded FFT pair.

The normal operator of a type-2 NUFFT is (block-)Toeplitz:

.. math::

    (A^H W A)_{k,k'} = \\sum_j w_j e^{-is (k - k') . x_j} = t_{k - k'},

i.e. a discrete convolution of the image with the *point-spread kernel*
``t_l`` -- itself a type-1 NUFFT of the weights evaluated on the doubled mode
grid ``l in [-N, N)^d``.  Embedding the image into the ``2N`` grid turns the
convolution circular, so after a **one-time** type-1 call the CG inner loop
needs only a forward/inverse FFT pair of size ``2N`` per dimension and a
pointwise multiply: no spreading, no interpolation, no per-iteration
nonuniform work at all.  This is the standard Toeplitz trick of iterative
MRI/tomography reconstruction, and on the simulated device it removes the
spread/interp kernels that dominate every NUFFT execute -- the
``bench_solve`` benchmark gates the resulting modelled per-iteration speedup
at >= 2x over the explicit :class:`~repro.solve.operators.NormalOperator`.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..core.deconvolve import deconvolve_kernel_profile
from ..core.options import Precision
from ..core.plan import Plan
from ..gpu.costmodel import CostModel
from ..gpu.fft import fft_kernel_profile
from .operators import validate_weights

__all__ = ["ToeplitzNormalOperator"]


class ToeplitzNormalOperator:
    """Applies ``A^H W A`` as a circular convolution with a precomputed PSF.

    Parameters
    ----------
    points : sequence of ndarray
        Per-dimension nonuniform sample coordinates, each ``(M,)``, in
        ``[-pi, pi)`` -- the same points the forward/adjoint operators use.
    n_modes : tuple of int
        Image mode counts ``(N1[, N2[, N3]])``.
    eps : float
        NUFFT tolerance of the one-time PSF build (and the accuracy level of
        the embedded operator; matching the forward/adjoint tolerance keeps
        the Toeplitz and explicit paths within ~10 eps of each other).
    precision : str or Precision
        Output dtype convention (``apply`` computes in double internally).
    weights : ndarray or None
        Nonnegative density-compensation weights ``w_j``; ``None`` is the
        unweighted ``A^H A``.
    isign : int
        Exponent sign of the *forward* model ``A`` (``+1`` by default); the
        PSF is built with the adjoint's sign automatically.
    plan, service, device
        PSF-plan acquisition, mirroring the operator wrappers: borrow
        ``plan=`` (a type-1 plan with ``2N`` modes), lease from ``service=``,
        or construct an owned plan on ``device``.
    artifact_store : ArtifactStore, optional
        Warm-state store to load/save the PSF kernel transform (kind
        ``"psf"``).  Defaults to the service's store when leasing from a
        service; a warm entry skips the one-time type-1 build entirely
        (``psf_build_seconds`` is then 0).
    **plan_kwargs
        Extra :class:`~repro.core.plan.Plan` options for an owned/leased PSF
        plan (e.g. ``backend=``, ``method=``).

    Notes
    -----
    The PSF plan is only needed during construction; it is released/destroyed
    immediately after the kernel transform is in hand, so a pooled plan goes
    back to the pool before the first CG iteration runs.  ``apply`` is then
    pure FFT arithmetic plus one pointwise multiply on the ``2N`` embedding.
    Hermitian symmetry is enforced exactly by dropping the ``O(eps)``
    imaginary part of the kernel transform (``t_{-l} = conj(t_l)`` for real
    weights), so CG sees a genuinely Hermitian operator.
    """

    def __init__(self, points, n_modes, eps=1e-6, precision="double",
                 weights=None, isign=1, plan=None, service=None, device=None,
                 artifact_store=None, **plan_kwargs):
        self.n_modes = tuple(int(n) for n in n_modes)
        self.ndim = len(self.n_modes)
        self.points = [np.asarray(p, dtype=np.float64) for p in points]
        if len(self.points) != self.ndim:
            raise ValueError(
                f"got {len(self.points)} coordinate arrays for a "
                f"{self.ndim}D mode grid"
            )
        self.n_points = int(self.points[0].shape[0])
        self.eps = float(eps)
        self.precision = Precision.parse(precision)
        self.isign = int(isign)
        self.embed_shape = tuple(2 * n for n in self.n_modes)
        self.weights = validate_weights(weights, self.n_points)
        if self.weights is None:
            psf_strengths = np.ones(self.n_points, dtype=np.complex128)
        else:
            psf_strengths = self.weights.astype(np.complex128)

        if artifact_store is None:
            artifact_store = getattr(service, "artifact_store", None)
        self.artifact_store = artifact_store

        # Warm path: the kernel transform is a pure function of the points,
        # weights and plan accuracy knobs, so a stored entry replaces the
        # one-time type-1 build outright (psf_build_seconds is then 0).
        warm = None
        key = None
        if artifact_store is not None:
            key = self._psf_key(psf_strengths)
            warm = artifact_store.load_arrays("psf", key)
        if warm is not None:
            self.psf_build_seconds = 0.0
            self._cost_model = CostModel(
                spec=self._spec_for(plan, service, device),
                precision_itemsize=self.precision.real_itemsize,
            )
            self.kernel_hat = warm["kernel_hat"]
            return

        psf_plan, release = self._acquire_psf_plan(plan, service, device,
                                                   plan_kwargs)
        try:
            psf_plan.set_pts(*self.points)
            # t_l = sum_j w_j e^{-is l.x_j} on the doubled (2N) mode grid,
            # ascending from -N per axis: every lag |k - k'| <= N - 1 the
            # normal operator can produce, in one type-1 call.
            psf = np.asarray(psf_plan.execute(psf_strengths),
                             dtype=np.complex128)
            self.psf_build_seconds = self._psf_seconds(psf_plan)
            self._cost_model = CostModel(
                spec=psf_plan.device.spec,
                precision_itemsize=self.precision.real_itemsize,
            )
        finally:
            release()
        # ifftshift maps the ascending-centred lags onto circular order
        # (lag l at index l mod 2N); the kernel transform of real weights is
        # real up to the NUFFT tolerance, and taking the real part makes the
        # embedded operator exactly Hermitian.
        self.kernel_hat = np.real(np.fft.fftn(np.fft.ifftshift(psf)))
        if artifact_store is not None:
            artifact_store.save_arrays("psf", key,
                                       {"kernel_hat": self.kernel_hat})
            self.kernel_hat.setflags(write=False)

    def _psf_key(self, psf_strengths):
        """Artifact key of this operator's PSF (kind ``"psf"``).

        Mirrors a tuning signature: every input the kernel transform depends
        on -- points, weights, mode grid, tolerance, precision, sign --
        participates, digested so the key stays filename-sized.
        """
        h = hashlib.blake2b(digest_size=16)
        for p in self.points:
            h.update(np.ascontiguousarray(p).tobytes())
        h.update(np.ascontiguousarray(psf_strengths).tobytes())
        grid = "x".join(str(n) for n in self.n_modes)
        return (f"pts={h.hexdigest()}.grid={grid}.eps={self.eps:.9g}"
                f".prec={self.precision.value}.isign={self.isign:+d}")

    @staticmethod
    def _spec_for(plan, service, device):
        """Device spec for the cost model when no PSF plan was ever built."""
        if plan is not None:
            return plan.device.spec
        if device is not None:
            return device.spec
        if service is not None:
            return service.fleet.devices[0].spec
        from ..gpu.device import Device

        return Device().spec

    def _acquire_psf_plan(self, plan, service, device, plan_kwargs):
        """The one-shot type-1 plan over the doubled modes, plus its releaser."""
        if plan is not None:
            if service is not None:
                raise ValueError("pass either plan= or service=, not both")
            if plan.nufft_type != 1 or plan.n_modes != self.embed_shape:
                raise ValueError(
                    f"psf plan must be type 1 with modes {self.embed_shape}, "
                    f"got type {plan.nufft_type} modes {plan.n_modes}"
                )
            if plan.isign != -self.isign:
                raise ValueError(
                    f"psf plan has isign={plan.isign:+d}; a forward model "
                    f"with isign={self.isign:+d} needs the adjoint sign "
                    f"{-self.isign:+d}"
                )
            return plan, lambda: None
        if service is not None:
            leased = service.lease_plan(
                1, self.embed_shape, eps=self.eps,
                precision=self.precision.value, isign=-self.isign,
                device=device, **plan_kwargs,
            )
            return leased, lambda: service.release_plan(leased)
        owned = Plan(1, self.embed_shape, eps=self.eps,
                     precision=self.precision.value, isign=-self.isign,
                     device=device, **plan_kwargs)
        return owned, owned.destroy

    @staticmethod
    def _psf_seconds(psf_plan):
        """Modelled one-time PSF build cost (setup + exec of the type-1 call)."""
        t = psf_plan.timings()
        return t["setup"] + t["exec"]

    # ------------------------------------------------------------------ #
    # application
    # ------------------------------------------------------------------ #
    def apply(self, f):
        """``A^H W A f`` for one image (or a leading-axis stack of images).

        ``f`` has shape ``n_modes`` (axes ascending from ``-N//2``) or
        ``(B, *n_modes)``; the return matches, in the operator's precision.
        """
        f = np.asarray(f)
        batched = f.ndim == self.ndim + 1
        if f.shape[f.ndim - self.ndim:] != self.n_modes or \
                f.ndim not in (self.ndim, self.ndim + 1):
            raise ValueError(
                f"image has shape {f.shape}, expected {self.n_modes} "
                f"(or a (B, *{self.n_modes}) stack)"
            )
        lead = f.shape[:1] if batched else ()
        pad = np.zeros(lead + self.embed_shape, dtype=np.complex128)
        sel = (slice(None),) * len(lead) + tuple(slice(0, n) for n in self.n_modes)
        pad[sel] = f
        axes = tuple(range(len(lead), len(lead) + self.ndim))
        conv = np.fft.ifftn(np.fft.fftn(pad, axes=axes) * self.kernel_hat,
                            axes=axes)
        return conv[sel].astype(self.precision.complex_dtype, copy=False)

    __call__ = apply

    def diagonal(self):
        """The (constant) diagonal of the Toeplitz operator, ``t_0 = sum_j w_j``.

        ``1 / diagonal()`` is the natural image-domain Jacobi preconditioner;
        for a Toeplitz normal operator it is a pure scaling, so the heavy
        lifting of preconditioning lives in the density-compensation weights
        themselves (which flatten the *off*-diagonal decay).
        """
        if self.weights is None:
            return float(self.n_points)
        return float(np.sum(self.weights))

    # ------------------------------------------------------------------ #
    # cost model
    # ------------------------------------------------------------------ #
    def iteration_profiles(self):
        """Kernel profiles of one apply: two ``2N`` FFTs + pointwise multiply."""
        cplx = self.precision.complex_itemsize
        return [
            fft_kernel_profile(self.embed_shape, cplx, name="cufft_forward"),
            deconvolve_kernel_profile(self.embed_shape, cplx,
                                      name="toeplitz_multiply"),
            fft_kernel_profile(self.embed_shape, cplx, name="cufft_inverse"),
        ]

    def modelled_iteration_seconds(self):
        """Modelled kernel seconds of one apply on the PSF plan's device.

        Priced through the same :class:`~repro.gpu.costmodel.CostModel` the
        plans use, so the ``bench_solve`` speedup gate compares like with
        like: FFT-pair + multiply here versus spread + FFTs + interp on the
        explicit path.
        """
        return sum(self._cost_model.kernel_time(p)
                   for p in self.iteration_profiles())
