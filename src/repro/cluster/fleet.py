"""Device fleet: a pool of simulated GPUs with streams, scheduling and health.

Where :class:`~repro.cluster.node.Node` mirrors the paper's MPI deployment
(one process per rank, ranks round-robined onto GPUs, contention once they
share), the :class:`DeviceFleet` is the *serving* view of the same hardware:
one process drives every device, each device carries a small set of CUDA-like
:class:`~repro.gpu.device.Stream` objects, and work is placed by projected
completion time rather than by rank index.  This is the substrate the
:class:`~repro.service.TransformService` shards coalesced request blocks
over, reproducing the shape of the paper's multi-GPU weak-scaling experiment
(Fig. 9) in a request-serving setting.

The fleet also tracks **per-device health** (the resilience layer): every
device carries a :class:`DeviceHealth` record driving a consecutive-failure
circuit breaker (``closed -> open -> half-open probe``, see
:class:`BreakerState`), devices can be administratively drained or evicted,
and :meth:`ranked` / :meth:`least_loaded` placement skips devices whose
breaker is open -- so a flaky or dead GPU stops receiving work until a
half-open probe proves it recovered.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..gpu.device import Device, V100_SPEC

__all__ = ["DeviceFleet", "DeviceHealth", "BreakerState"]


class BreakerState(enum.Enum):
    """Circuit-breaker states of one device (classic three-state machine).

    ``CLOSED``
        Healthy: work flows normally; failures increment the
        consecutive-failure count.
    ``OPEN``
        Tripped after ``failure_threshold`` consecutive failures: placement
        skips the device until ``breaker_cooldown_s`` of modelled fleet time
        has elapsed.
    ``HALF_OPEN``
        Cooldown elapsed: the device is admissible again for *probe* work.
        A recorded success closes the breaker; a failure re-opens it (and
        restarts the cooldown).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass
class DeviceHealth:
    """Mutable health record of one fleet device.

    Attributes
    ----------
    state : BreakerState
        Stored breaker state (``OPEN`` lazily reads as ``HALF_OPEN`` once the
        cooldown elapses; see :meth:`DeviceFleet.breaker_state`).
    consecutive_failures : int
        Failures since the last success; trips the breaker at the fleet's
        ``failure_threshold``.
    failures, successes : int
        Lifetime counters.
    trips : int
        Times the breaker transitioned ``CLOSED/HALF_OPEN -> OPEN``.
    opened_at : float
        Modelled fleet instant (seconds) of the most recent trip.
    draining : bool
        Administratively excluded from *new* placements (in-flight work may
        finish); set by :meth:`DeviceFleet.drain`.
    evicted : bool
        Permanently removed from placement (dead hardware or operator
        action); set by :meth:`DeviceFleet.evict`.
    """

    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    failures: int = 0
    successes: int = 0
    trips: int = 0
    opened_at: float = 0.0
    draining: bool = False
    evicted: bool = False


class DeviceFleet:
    """A fleet of simulated devices with per-device streams.

    Parameters
    ----------
    n_devices : int
        Number of simulated GPUs in the fleet.
    spec : DeviceSpec, optional
        Hardware description shared by every device (paper V100 by default).
    streams_per_device : int
        Streams created on each device; two give the classic double-buffering
        overlap of one block's d2h/h2d with the next block's kernels.
    failure_threshold : int
        Consecutive failures on one device that trip its circuit breaker
        (``CLOSED -> OPEN``).
    breaker_cooldown_s : float
        Modelled fleet seconds an open breaker waits before admitting a
        half-open probe.  The clock is :meth:`makespan` -- modelled time, so
        cooldowns are as deterministic as the rest of the simulation.
    """

    def __init__(self, n_devices=1, spec=None, streams_per_device=2,
                 failure_threshold=3, breaker_cooldown_s=0.05):
        n_devices = int(n_devices)
        if n_devices < 1:
            raise ValueError(f"n_devices must be >= 1, got {n_devices}")
        streams_per_device = int(streams_per_device)
        if streams_per_device < 1:
            raise ValueError(
                f"streams_per_device must be >= 1, got {streams_per_device}"
            )
        failure_threshold = int(failure_threshold)
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        breaker_cooldown_s = float(breaker_cooldown_s)
        if breaker_cooldown_s < 0.0:
            raise ValueError(
                f"breaker_cooldown_s must be >= 0, got {breaker_cooldown_s}"
            )
        self.spec = spec if spec is not None else V100_SPEC
        self.streams_per_device = streams_per_device
        self.failure_threshold = failure_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.devices = [Device(spec=self.spec, device_id=i) for i in range(n_devices)]
        for dev in self.devices:
            for _ in range(streams_per_device):
                dev.create_stream()
        self._stream_cursor = [0] * n_devices
        self.health = [DeviceHealth() for _ in range(n_devices)]

    @classmethod
    def from_node(cls, node_spec, streams_per_device=2):
        """Build a fleet matching a :class:`~repro.cluster.node.NodeSpec`."""
        return cls(n_devices=node_spec.n_gpus, spec=node_spec.gpu_spec,
                   streams_per_device=streams_per_device)

    @property
    def n_devices(self):
        return len(self.devices)

    def device(self, index):
        return self.devices[index]

    # ------------------------------------------------------------------ #
    # health / circuit breakers
    # ------------------------------------------------------------------ #
    def breaker_state(self, device_id):
        """Effective breaker state of one device (lazy ``OPEN -> HALF_OPEN``).

        The transition out of ``OPEN`` is evaluated lazily against modelled
        fleet time: once :meth:`makespan` has advanced ``breaker_cooldown_s``
        past the trip instant, the stored ``OPEN`` reads (and is rewritten)
        as ``HALF_OPEN`` -- the device may take probe work again.
        """
        h = self.health[device_id]
        if h.state is BreakerState.OPEN:
            if self.makespan() - h.opened_at >= self.breaker_cooldown_s:
                h.state = BreakerState.HALF_OPEN
        return h.state

    def record_success(self, device_id):
        """Note a successful unit of work; closes a half-open breaker."""
        h = self.health[device_id]
        h.successes += 1
        h.consecutive_failures = 0
        if self.breaker_state(device_id) is BreakerState.HALF_OPEN:
            h.state = BreakerState.CLOSED

    def record_failure(self, device_id):
        """Note a failed unit of work; returns True when the breaker trips.

        Trips ``CLOSED -> OPEN`` at ``failure_threshold`` consecutive
        failures, and ``HALF_OPEN -> OPEN`` on the first failed probe (the
        cooldown restarts from the current makespan).
        """
        h = self.health[device_id]
        h.failures += 1
        h.consecutive_failures += 1
        state = self.breaker_state(device_id)
        tripped = (
            state is BreakerState.HALF_OPEN
            or (state is BreakerState.CLOSED
                and h.consecutive_failures >= self.failure_threshold)
        )
        if tripped:
            h.state = BreakerState.OPEN
            h.opened_at = self.makespan()
            h.trips += 1
        return tripped

    def drain(self, device_id):
        """Administratively exclude a device from new placements."""
        self.health[device_id].draining = True

    def restore(self, device_id):
        """Undo a :meth:`drain` (an evicted device stays evicted)."""
        self.health[device_id].draining = False

    def evict(self, device_id):
        """Permanently remove a device from placement (dead hardware)."""
        h = self.health[device_id]
        h.evicted = True
        h.state = BreakerState.OPEN
        h.opened_at = self.makespan()

    def is_admissible(self, device_id):
        """Whether placement may send *new* work to this device.

        Admissible means: alive, not evicted, not draining, and breaker not
        ``OPEN`` (``HALF_OPEN`` is admissible -- that is the probe path).
        """
        h = self.health[device_id]
        if h.evicted or h.draining:
            return False
        if not getattr(self.devices[device_id], "alive", True):
            return False
        return self.breaker_state(device_id) is not BreakerState.OPEN

    def admissible(self):
        """Devices currently admissible for new work, in id order."""
        return [d for d in self.devices if self.is_admissible(d.device_id)]

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def ranked(self, healthy_only=True):
        """Devices ordered by projected completion time (least loaded first).

        Ties (e.g. an idle fleet) resolve to the lowest device id, so a
        sequence of equal-cost placements round-robins naturally: each
        placement advances its device's frontier past its siblings'.  This is
        *the* placement order -- the service uses it for block pinning and
        plan acquisition alike.

        With ``healthy_only=True`` (the default) only admissible devices are
        returned -- open breakers, draining and evicted devices are skipped.
        On a fully healthy fleet this is identical to the unfiltered order.
        If *no* device is admissible the alive, non-evicted ones are returned
        instead (degraded serving beats refusing outright); an entirely lost
        fleet raises :class:`~repro.faults.DeviceLostError`.
        """
        key = lambda d: (d.timeline_makespan(), d.device_id)  # noqa: E731
        if not healthy_only:
            return sorted(self.devices, key=key)
        devices = self.admissible()
        if not devices:
            devices = [
                d for d in self.devices
                if getattr(d, "alive", True) and not self.health[d.device_id].evicted
            ]
        if not devices:
            from ..faults import DeviceLostError
            raise DeviceLostError("every device in the fleet is lost")
        return sorted(devices, key=key)

    def least_loaded(self, healthy_only=True):
        """Admissible device with the earliest projected completion time."""
        return self.ranked(healthy_only=healthy_only)[0]

    def next_stream(self, device):
        """Round-robin over the device's streams (successive blocks overlap)."""
        cursor = self._stream_cursor[device.device_id]
        stream = device.streams[cursor % len(device.streams)]
        self._stream_cursor[device.device_id] = cursor + 1
        return stream

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def makespan(self):
        """Fleet makespan: the latest completion over every device timeline."""
        return max((d.timeline_makespan() for d in self.devices), default=0.0)

    def backlog_s(self, now=0.0):
        """Modelled seconds of already-queued work extending past ``now``.

        The serving front-end's backpressure signal: how far the fleet's
        stream timelines run ahead of the front-end's modelled clock.  Zero
        when every queued operation has completed by ``now``.
        """
        return max(0.0, self.makespan() - float(now))

    @property
    def total_streams(self):
        """Streams across the whole fleet (the concurrent-dispatch width)."""
        return sum(len(d.streams) for d in self.devices)

    def utilization(self, engine="exec"):
        """Per-device busy fraction of the *fleet* makespan for one engine.

        Measured against the fleet-wide makespan (not each device's own) so
        an idle device shows up as low utilization rather than vanishing from
        the average.
        """
        makespan = self.makespan()
        if makespan <= 0.0:
            return [0.0] * self.n_devices
        return [d.busy_seconds[engine] / makespan for d in self.devices]

    def busy_seconds(self, engine="exec"):
        """Total busy seconds of one engine summed over the fleet."""
        return sum(d.busy_seconds[engine] for d in self.devices)

    def reset_timelines(self):
        """Rewind every device timeline to t=0 (allocations survive)."""
        for dev in self.devices:
            dev.reset_timeline()

    def reset(self):
        """Full reset: timelines, allocations, contexts *and health*.

        ``Device.reset`` drops the streams, so the per-device set is rebuilt;
        it also revives dead devices, and the health records start over
        (breakers closed, drains and evictions cleared).
        """
        for dev in self.devices:
            dev.reset()
            for _ in range(self.streams_per_device):
                dev.create_stream()
        self._stream_cursor = [0] * self.n_devices
        self.health = [DeviceHealth() for _ in range(self.n_devices)]

    def __repr__(self):  # pragma: no cover - debugging nicety
        return (f"DeviceFleet(n_devices={self.n_devices}, "
                f"spec={self.spec.name!r}, makespan={self.makespan():.6f}s)")
