"""Device fleet: a pool of simulated GPUs with streams and a scheduler.

Where :class:`~repro.cluster.node.Node` mirrors the paper's MPI deployment
(one process per rank, ranks round-robined onto GPUs, contention once they
share), the :class:`DeviceFleet` is the *serving* view of the same hardware:
one process drives every device, each device carries a small set of CUDA-like
:class:`~repro.gpu.device.Stream` objects, and work is placed by projected
completion time rather than by rank index.  This is the substrate the
:class:`~repro.service.TransformService` shards coalesced request blocks
over, reproducing the shape of the paper's multi-GPU weak-scaling experiment
(Fig. 9) in a request-serving setting.
"""

from __future__ import annotations

from ..gpu.device import Device, V100_SPEC

__all__ = ["DeviceFleet"]


class DeviceFleet:
    """A fleet of simulated devices with per-device streams.

    Parameters
    ----------
    n_devices : int
        Number of simulated GPUs in the fleet.
    spec : DeviceSpec, optional
        Hardware description shared by every device (paper V100 by default).
    streams_per_device : int
        Streams created on each device; two give the classic double-buffering
        overlap of one block's d2h/h2d with the next block's kernels.
    """

    def __init__(self, n_devices=1, spec=None, streams_per_device=2):
        n_devices = int(n_devices)
        if n_devices < 1:
            raise ValueError(f"n_devices must be >= 1, got {n_devices}")
        streams_per_device = int(streams_per_device)
        if streams_per_device < 1:
            raise ValueError(
                f"streams_per_device must be >= 1, got {streams_per_device}"
            )
        self.spec = spec if spec is not None else V100_SPEC
        self.streams_per_device = streams_per_device
        self.devices = [Device(spec=self.spec, device_id=i) for i in range(n_devices)]
        for dev in self.devices:
            for _ in range(streams_per_device):
                dev.create_stream()
        self._stream_cursor = [0] * n_devices

    @classmethod
    def from_node(cls, node_spec, streams_per_device=2):
        """Build a fleet matching a :class:`~repro.cluster.node.NodeSpec`."""
        return cls(n_devices=node_spec.n_gpus, spec=node_spec.gpu_spec,
                   streams_per_device=streams_per_device)

    @property
    def n_devices(self):
        return len(self.devices)

    def device(self, index):
        return self.devices[index]

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def ranked(self):
        """Devices ordered by projected completion time (least loaded first).

        Ties (e.g. an idle fleet) resolve to the lowest device id, so a
        sequence of equal-cost placements round-robins naturally: each
        placement advances its device's frontier past its siblings'.  This is
        *the* placement order -- the service uses it for block pinning and
        plan acquisition alike.
        """
        return sorted(self.devices, key=lambda d: (d.timeline_makespan(), d.device_id))

    def least_loaded(self):
        """Device with the earliest projected completion time."""
        return self.ranked()[0]

    def next_stream(self, device):
        """Round-robin over the device's streams (successive blocks overlap)."""
        cursor = self._stream_cursor[device.device_id]
        stream = device.streams[cursor % len(device.streams)]
        self._stream_cursor[device.device_id] = cursor + 1
        return stream

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def makespan(self):
        """Fleet makespan: the latest completion over every device timeline."""
        return max((d.timeline_makespan() for d in self.devices), default=0.0)

    def utilization(self, engine="exec"):
        """Per-device busy fraction of the *fleet* makespan for one engine.

        Measured against the fleet-wide makespan (not each device's own) so
        an idle device shows up as low utilization rather than vanishing from
        the average.
        """
        makespan = self.makespan()
        if makespan <= 0.0:
            return [0.0] * self.n_devices
        return [d.busy_seconds[engine] / makespan for d in self.devices]

    def busy_seconds(self, engine="exec"):
        """Total busy seconds of one engine summed over the fleet."""
        return sum(d.busy_seconds[engine] for d in self.devices)

    def reset_timelines(self):
        """Rewind every device timeline to t=0 (allocations survive)."""
        for dev in self.devices:
            dev.reset_timeline()

    def reset(self):
        """Full reset: timelines, allocations and contexts on every device.

        ``Device.reset`` drops the streams, so the per-device set is rebuilt.
        """
        for dev in self.devices:
            dev.reset()
            for _ in range(self.streams_per_device):
                dev.create_stream()
        self._stream_cursor = [0] * self.n_devices

    def __repr__(self):  # pragma: no cover - debugging nicety
        return (f"DeviceFleet(n_devices={self.n_devices}, "
                f"spec={self.spec.name!r}, makespan={self.makespan():.6f}s)")
