"""Simulated multi-GPU / MPI substrate (paper Sec. V).

The paper's application study runs MPI ranks (via mpi4py) round-robined over
the GPUs of a single Cori GPU or Summit node.  This subpackage simulates that
environment in-process:

* :class:`~repro.cluster.comm.SimComm` -- an MPI-communicator look-alike with
  ``scatter`` / ``gather`` / ``reduce`` / ``bcast`` / ``barrier`` plus a
  latency/bandwidth cost model;
* :class:`~repro.cluster.node.Node` -- a compute node with ``n_gpus``
  simulated V100s and round-robin rank -> device assignment;
* :mod:`~repro.cluster.weak_scaling` -- the weak-scaling experiment driver
  behind Fig. 9.
"""

from .comm import SimComm, CommCostModel
from .fleet import BreakerState, DeviceFleet, DeviceHealth
from .node import Node, CORI_GPU_NODE, SUMMIT_NODE
from .weak_scaling import (
    FleetScalingPoint,
    FleetScalingResult,
    WeakScalingResult,
    run_weak_scaling,
    run_weak_scaling_fleet,
)

__all__ = [
    "SimComm",
    "CommCostModel",
    "DeviceFleet",
    "DeviceHealth",
    "BreakerState",
    "Node",
    "CORI_GPU_NODE",
    "SUMMIT_NODE",
    "FleetScalingPoint",
    "FleetScalingResult",
    "WeakScalingResult",
    "run_weak_scaling",
    "run_weak_scaling_fleet",
]
