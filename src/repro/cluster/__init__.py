"""Simulated multi-GPU / MPI substrate (paper Sec. V).

The paper's application study runs MPI ranks (via mpi4py) round-robined over
the GPUs of a single Cori GPU or Summit node.  This subpackage simulates that
environment in-process:

* :class:`~repro.cluster.comm.SimComm` -- an MPI-communicator look-alike with
  ``scatter`` / ``gather`` / ``reduce`` / ``bcast`` / ``barrier`` plus a
  latency/bandwidth cost model;
* :class:`~repro.cluster.node.Node` -- a compute node with ``n_gpus``
  simulated V100s and round-robin rank -> device assignment;
* :class:`~repro.cluster.distributed.DistributedPlan` -- one oversized
  type-1/2 transform domain-decomposed across ranks (slab spreading, halo
  exchange, slab-decomposed FFT);
* :mod:`~repro.cluster.weak_scaling` -- the weak- and strong-scaling
  experiment drivers behind Fig. 9.
"""

from .comm import SimComm, CommCostModel, exchange_all
from .distributed import DistributedBreakdown, DistributedPlan
from .fleet import BreakerState, DeviceFleet, DeviceHealth
from .node import Node, CORI_GPU_NODE, SUMMIT_NODE
from .weak_scaling import (
    FleetScalingPoint,
    FleetScalingResult,
    StrongScalingPoint,
    StrongScalingResult,
    WeakScalingResult,
    run_weak_scaling,
    run_weak_scaling_fleet,
    run_strong_scaling_multinode,
)

__all__ = [
    "SimComm",
    "CommCostModel",
    "exchange_all",
    "DistributedPlan",
    "DistributedBreakdown",
    "DeviceFleet",
    "DeviceHealth",
    "BreakerState",
    "Node",
    "CORI_GPU_NODE",
    "SUMMIT_NODE",
    "FleetScalingPoint",
    "FleetScalingResult",
    "StrongScalingPoint",
    "StrongScalingResult",
    "WeakScalingResult",
    "run_weak_scaling",
    "run_weak_scaling_fleet",
    "run_strong_scaling_multinode",
]
