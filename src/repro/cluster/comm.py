"""In-process simulated MPI communicator.

The M-TIP pipeline uses only a handful of collective operations
(``scatter`` before slicing, ``reduce`` after merging, ``bcast`` of the
current model, ``barrier`` between steps).  :class:`SimComm` implements those
with NumPy semantics matching mpi4py's lowercase (pickle-based) API closely
enough that the application code reads like the real thing, and it accounts
for the communication cost with a simple latency + bandwidth model
(:class:`CommCostModel`).

All "ranks" live in one Python process: a :class:`SimComm` of size ``P``
is a *collection* of per-rank views over shared state, and collectives are
executed eagerly when the root's view is invoked.  This keeps the simulation
deterministic and dependency-free while exercising the same data movement the
MPI code performs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CommCostModel", "SimComm", "exchange_all"]

#: Pickled overhead of a small Python object or container header, in bytes.
#: A deliberate flat estimate -- what matters is that ndarray payloads are
#: counted exactly and nested containers never *undercount* their contents.
_SMALL_OBJECT_BYTES = 64


@dataclass(frozen=True)
class CommCostModel:
    """Latency/bandwidth model for intra-node collectives.

    Defaults describe NVLink/PCIe-class intra-node communication; the exact
    values barely matter for Fig. 9 (NUFFT execution dominates) but the terms
    exist so the weak-scaling totals include a communication contribution that
    grows with the number of ranks.
    """

    latency_s: float = 5.0e-6
    bandwidth: float = 2.0e10  # bytes/s per link

    def collective_time(self, nbytes, n_ranks):
        """Time of one scatter/gather/reduce of ``nbytes`` total payload."""
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        if nbytes < 0:
            raise ValueError("nbytes must be nonnegative")
        hops = max(1, int(np.ceil(np.log2(max(1, n_ranks)))))
        return hops * self.latency_s + nbytes / self.bandwidth


@dataclass
class _SharedState:
    """State shared by all rank views of one communicator."""

    size: int
    cost: CommCostModel
    comm_seconds: float = 0.0
    comm_bytes: int = 0
    mailbox: dict = field(default_factory=dict)


class SimComm:
    """A rank's view of a simulated intra-node communicator.

    Create the full communicator with :meth:`create` and index it by rank::

        comms = SimComm.create(size=8)
        rank0 = comms[0]

    The collective methods follow mpi4py's lowercase API: ``scatter`` takes a
    list of per-rank payloads at the root and returns this rank's element;
    ``reduce`` combines per-rank contributions at the root.  Because all ranks
    live in one process, collectives are expressed through the shared state:
    the root deposits the payload and every rank view reads its slot.
    """

    def __init__(self, rank, shared):
        self._rank = int(rank)
        self._shared = shared

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, size, cost_model=None):
        """Create ``size`` rank views sharing one communicator state."""
        if size < 1:
            raise ValueError("communicator size must be >= 1")
        shared = _SharedState(size=int(size), cost=cost_model or CommCostModel())
        return [cls(rank, shared) for rank in range(size)]

    # ------------------------------------------------------------------ #
    # introspection (mpi4py-style)
    # ------------------------------------------------------------------ #
    def Get_rank(self):
        return self._rank

    def Get_size(self):
        return self._shared.size

    @property
    def rank(self):
        return self._rank

    @property
    def size(self):
        return self._shared.size

    @property
    def comm_seconds(self):
        """Accumulated modelled communication time of this communicator."""
        return self._shared.comm_seconds

    @property
    def comm_bytes(self):
        """Accumulated payload bytes charged through the cost model."""
        return self._shared.comm_bytes

    def _charge(self, nbytes):
        self._shared.comm_seconds += self._shared.cost.collective_time(
            nbytes, self._shared.size
        )
        self._shared.comm_bytes += int(nbytes)

    @staticmethod
    def _payload_bytes(obj):
        """Modelled pickled size of one payload, recursing into containers.

        ndarrays count their exact ``nbytes``; bytes-like objects their
        length; containers add a flat header plus *all* their children --
        dicts include their keys, which the previous accounting dropped
        entirely (a dict of named halo slabs was billed as if the names were
        free, and an empty container as a full small object).  Everything
        else falls back to the flat small-object estimate.
        """
        if isinstance(obj, np.ndarray):
            return obj.nbytes
        if isinstance(obj, (bytes, bytearray, memoryview)):
            return len(obj)
        if isinstance(obj, (list, tuple, set, frozenset)):
            return _SMALL_OBJECT_BYTES + sum(
                SimComm._payload_bytes(o) for o in obj
            )
        if isinstance(obj, dict):
            return _SMALL_OBJECT_BYTES + sum(
                SimComm._payload_bytes(k) + SimComm._payload_bytes(v)
                for k, v in obj.items()
            )
        return _SMALL_OBJECT_BYTES  # pickled small-object overhead

    # ------------------------------------------------------------------ #
    # collectives
    # ------------------------------------------------------------------ #
    def scatter(self, sendobj, root=0):
        """Scatter a list of ``size`` payloads; returns this rank's element.

        Must be driven from the root view (the usual pattern in the M-TIP
        driver, which iterates over rank views explicitly).
        """
        size = self._shared.size
        if self._rank == root:
            if sendobj is None or len(sendobj) != size:
                raise ValueError(
                    f"scatter at root needs a list of exactly {size} payloads"
                )
            self._shared.mailbox["scatter"] = list(sendobj)
            self._charge(self._payload_bytes(sendobj))
        payload = self._shared.mailbox.get("scatter")
        if payload is None:
            raise RuntimeError("scatter called on a non-root rank before the root")
        return payload[self._rank]

    def bcast(self, obj, root=0):
        """Broadcast ``obj`` from the root to every rank view."""
        if self._rank == root:
            self._shared.mailbox["bcast"] = obj
            self._charge(self._payload_bytes(obj) * max(1, self._shared.size - 1))
        value = self._shared.mailbox.get("bcast")
        if value is None and self._rank != root:
            raise RuntimeError("bcast called on a non-root rank before the root")
        return value

    def gather(self, sendobj, root=0):
        """Gather per-rank payloads into a list at the root (None elsewhere)."""
        box = self._shared.mailbox.setdefault("gather", {})
        box[self._rank] = sendobj
        if len(box) == self._shared.size:
            self._charge(self._payload_bytes(list(box.values())))
        if self._rank == root:
            if len(box) != self._shared.size:
                raise RuntimeError(
                    "gather at root before all ranks contributed; drive all rank "
                    "views before reading the result"
                )
            result = [box[r] for r in range(self._shared.size)]
            self._shared.mailbox["gather"] = {}
            return result
        return None

    def reduce(self, sendobj, op=None, root=0):
        """Sum-reduce per-rank arrays at the root (None on other ranks)."""
        box = self._shared.mailbox.setdefault("reduce", {})
        box[self._rank] = np.asarray(sendobj)
        if len(box) == self._shared.size:
            self._charge(self._payload_bytes(list(box.values())))
        if self._rank == root:
            if len(box) != self._shared.size:
                raise RuntimeError(
                    "reduce at root before all ranks contributed; drive all rank "
                    "views before reading the result"
                )
            total = None
            for r in range(self._shared.size):
                contrib = box[r]
                total = contrib.copy() if total is None else total + contrib
            self._shared.mailbox["reduce"] = {}
            return total
        return None

    def allreduce(self, sendobj, op=None):
        """Sum-reduce completed by the last contributing rank view.

        Eager in-process contract: every rank contributes exactly once per
        round, in any order; contributions before the round completes
        return ``None``, and the final one returns the round's total (the
        moment the value "becomes visible" in a real allreduce).  Charged
        as a reduce of the contributions plus a broadcast of the result.
        The previous implementation deadlocked for ``size > 1``: it
        required the root's reduce (needing all contributions) *before*
        any non-root call, yet raised on non-roots called first.
        """
        box = self._shared.mailbox.setdefault("allreduce", {})
        if self._rank in box:
            raise RuntimeError(
                "rank contributed twice to one allreduce round; drive every "
                "other rank view before contributing again"
            )
        box[self._rank] = np.asarray(sendobj)
        if len(box) < self._shared.size:
            return None
        total = None
        for r in range(self._shared.size):
            contrib = box[r]
            total = contrib.copy() if total is None else total + contrib
        self._charge(
            self._payload_bytes(list(box.values()))
            + self._payload_bytes(total) * max(1, self._shared.size - 1)
        )
        self._shared.mailbox["allreduce"] = {}
        return total

    def barrier(self):
        """No-op synchronization point (everything is sequential here)."""
        self._charge(0)
        return None


def exchange_all(comms, send_matrix):
    """All-to-all personalized exchange across every rank view at once.

    ``send_matrix[i][j]`` is the payload rank ``i`` sends to rank ``j``
    (``None`` for nothing); the return value is the transposed receive
    matrix: ``recv[j][i] = send_matrix[i][j]``.  Diagonal entries stay local
    and are neither charged nor counted -- only payloads between *distinct*
    ranks hit the modelled interconnect, as one collective over their summed
    bytes (``None`` entries are free, unlike a point-to-point ``64``-byte
    envelope, so structural zero-row halo slabs cost exactly zero).

    The eager in-process collectives on :class:`SimComm` cannot express a
    per-rank ``alltoall`` return value cleanly, so this driver-level helper
    takes the whole list of rank views, mirroring how the distributed plan
    (and the M-TIP driver before it) already iterates over them.
    """
    size = comms[0].Get_size()
    if len(comms) != size:
        raise ValueError(f"exchange_all needs all {size} rank views")
    if len(send_matrix) != size or any(len(row) != size for row in send_matrix):
        raise ValueError(f"send_matrix must be {size}x{size}")
    nbytes = sum(
        SimComm._payload_bytes(send_matrix[i][j])
        for i in range(size)
        for j in range(size)
        if i != j and send_matrix[i][j] is not None
    )
    comms[0]._charge(nbytes)
    return [[send_matrix[i][j] for i in range(size)] for j in range(size)]
