"""Multi-node distributed NUFFT: domain decomposition over SimComm ranks.

The paper's application study (Sec. V, Fig. 9) runs the NUFFT across MPI
ranks round-robined over the GPUs of Cori GPU / Summit nodes.  This module
executes one *oversized* transform across simulated ranks the way
FINUFFT-family distributed implementations do:

* **type 1** -- partition the nonuniform points by the axis-0 slab of the
  fine grid that owns their bin (:mod:`repro.core.slab`), scatter strengths,
  spread locally onto a kernel-half-width-padded slab, **halo-exchange** the
  pad rows over :class:`~repro.cluster.comm.SimComm` (charged through the
  :class:`~repro.cluster.comm.CommCostModel`), run a **slab-decomposed FFT**
  (local FFTs along the fully-owned axes, an all-to-all transpose, the FFT
  along the split axis, and the transpose back), deconvolve the locally-owned
  mode rows, and gather the coefficients at the root;
* **type 2** runs the pipeline in reverse: scatter mode rows, pre-correct
  onto the owned fine slab, distributed inverse FFT, **halo-import** the
  neighbour rows each rank's interpolation stencils reach, interpolate at the
  owned points, and gather the values back into the caller's point order.

Numerically every stage reuses the single-node machinery (the spread/interp
entry points, :class:`~repro.core.deconvolve.CorrectionFactors`, the
:class:`~repro.gpu.fft.DeviceFFT`), so the distributed result matches a
single :class:`~repro.core.plan.Plan` to rounding error; the tests in
``tests/test_distributed.py`` pin that equivalence property-style, and pin
the measured halo traffic against the analytic slab-boundary volume
(:func:`repro.core.slab.analytic_halo_bytes`) *exactly*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.binsort import bin_sort, to_grid_coordinates
from ..core.deconvolve import CorrectionFactors, deconvolve_kernel_profile
from ..core.gridsize import fine_grid_shape
from ..core.interp import interp_kernel_profiles
from ..core.options import Opts, SpreadMethod, default_bin_shape
from ..core.slab import (
    halo_pads,
    halo_row_map,
    interp_from_slab,
    partition_points_by_slab,
    slab_partition,
    spread_to_slab,
)
from ..core.spread import spread_kernel_profiles
from ..gpu.costmodel import CostModel
from ..gpu.fft import DeviceFFT, fft_kernel_profile
from ..gpu.profiler import PipelineProfile
from ..kernels.es_kernel import ESKernel
from .comm import CommCostModel, SimComm, exchange_all
from .node import Node, NodeSpec

__all__ = ["DistributedPlan", "DistributedBreakdown"]

_COORD_NAMES = ("x", "y", "z")


@dataclass(frozen=True)
class DistributedBreakdown:
    """Modelled time/traffic decomposition of one distributed execute.

    ``compute_s`` is the slowest rank's kernel time (device contention
    included); the four communication terms are the modelled SimComm charges
    of each phase.  ``overlap_s`` is the portion of the halo exchange hidden
    behind the slab-local FFT along the fully-owned axes -- that stage is
    row-independent, so interior rows transform while boundary rows are in
    flight -- and ``makespan_s`` credits it against the serial sum.
    """

    n_ranks: int
    compute_s: float
    scatter_s: float
    halo_s: float
    transpose_s: float
    gather_s: float
    local_fft_s: float
    halo_bytes: int
    transpose_bytes: int

    @property
    def comm_s(self):
        """Total modelled communication seconds across all four phases."""
        return self.scatter_s + self.halo_s + self.transpose_s + self.gather_s

    @property
    def overlap_s(self):
        """Halo time hidden behind the row-independent local FFT stage."""
        return min(self.halo_s, self.local_fft_s)

    @property
    def makespan_s(self):
        """Modelled wall-clock of the distributed execute (overlap credited)."""
        return self.compute_s + self.comm_s - self.overlap_s

    @property
    def comm_fraction(self):
        """Unhidden communication share of the makespan (0 when free)."""
        total = self.makespan_s
        return (self.comm_s - self.overlap_s) / total if total > 0 else 0.0


class DistributedPlan:
    """A type-1 or type-2 NUFFT executed across simulated MPI ranks.

    Mirrors the :class:`~repro.core.plan.Plan` lifecycle (``set_pts`` then
    repeatable ``execute``) but decomposes the fine grid into contiguous
    axis-0 slabs, one per rank of an in-process :class:`SimComm`
    communicator; each rank is mapped to a node GPU via
    :meth:`~repro.cluster.node.Node.assign_ranks`, so oversubscribed rank
    counts see the paper's contention slowdown in the modelled makespan.

    Parameters
    ----------
    nufft_type : int
        1 or 2.  Type 3 is not decomposed here: its rescaled fine grid
        depends on the point extents, so run it on a single
        :class:`~repro.core.plan.Plan`.
    n_modes : tuple of int
        Mode counts ``(N1[, N2[, N3]])``.
    n_ranks : int
        Number of simulated MPI ranks (slabs).
    n_trans : int, optional
        Batched transforms sharing the point set.
    eps : float, optional
        Requested tolerance (sets the kernel width, as for ``Plan``).
    node : Node or NodeSpec, optional
        Compute node whose GPUs host the ranks (Cori GPU by default).
    cost_model : CommCostModel, optional
        Interconnect latency/bandwidth model for the SimComm charges.
    **opt_overrides
        :class:`~repro.core.options.Opts` fields (``precision``, ``isign``,
        ``upsampfac``, ...).  ``spread_only`` is rejected: the fine grid is
        never assembled in one place here.

    After each :meth:`execute` the plan exposes ``halo_bytes`` -- the exact
    payload bytes the halo exchange moved between distinct ranks -- and
    ``last_breakdown``, the :class:`DistributedBreakdown` of modelled
    compute/communication time.
    """

    def __init__(self, nufft_type, n_modes, n_ranks, n_trans=1, eps=1e-6,
                 node=None, cost_model=None, **opt_overrides):
        if nufft_type not in (1, 2):
            raise ValueError(
                "DistributedPlan supports types 1 and 2; a type-3 transform's "
                "fine grid depends on the point extents -- run it on a single "
                "Plan"
            )
        if int(n_ranks) < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        self.nufft_type = int(nufft_type)
        self.n_modes = tuple(int(n) for n in n_modes)
        if len(self.n_modes) not in (1, 2, 3) or any(n < 1 for n in self.n_modes):
            raise ValueError(f"invalid n_modes {n_modes!r}")
        self.ndim = len(self.n_modes)
        self.n_ranks = int(n_ranks)
        self.n_trans = int(n_trans)
        if self.n_trans < 1:
            raise ValueError(f"n_trans must be >= 1, got {n_trans}")
        self.eps = float(eps)

        self.opts = Opts().copy(**opt_overrides) if opt_overrides else Opts()
        if self.opts.spread_only:
            raise ValueError(
                "spread_only is not supported by DistributedPlan: the fine "
                "grid is slab-partitioned and never assembled in one place"
            )
        self.precision = self.opts.precision
        self.isign = self.opts.resolve_isign(self.nufft_type)

        self.kernel = ESKernel.from_tolerance(self.eps, upsampfac=self.opts.upsampfac)
        self.fine_shape = fine_grid_shape(
            self.n_modes, self.kernel.width, self.opts.upsampfac
        )
        self.correction = CorrectionFactors(self.kernel, self.n_modes, self.fine_shape)
        self.slabs = slab_partition(self.fine_shape[0], self.n_ranks)

        if node is None:
            self.node = Node()
        elif isinstance(node, NodeSpec):
            self.node = Node(spec=node)
        else:
            self.node = node
        self.devices = self.node.assign_ranks(self.n_ranks)
        self._cost_models = [
            CostModel(spec=dev.spec, precision_itemsize=self.precision.real_itemsize)
            for dev in self.devices
        ]
        self._comms = SimComm.create(self.n_ranks, cost_model or CommCostModel())

        self._points_ready = False
        self._owned_idx = None
        self._rank_coords = None
        self._rank_sorts = None
        self.n_points = 0
        #: Exact data bytes the halo exchange of the last execute moved
        #: between distinct ranks (None before the first execute); equals
        #: :func:`repro.core.slab.analytic_halo_bytes` by construction.
        self.halo_bytes = None
        #: :class:`DistributedBreakdown` of the last execute (None before).
        self.last_breakdown = None

    # ------------------------------------------------------------------ #
    # point registration
    # ------------------------------------------------------------------ #
    def set_pts(self, x, y=None, z=None):
        """Register the nonuniform points and partition them by slab owner.

        Coordinates follow the ``Plan`` convention (one 1-D array per
        dimension, values folded into ``[-pi, pi)``).  Ownership is the
        bin-sort cell of the axis-0 grid coordinate, so points exactly on a
        slab boundary land deterministically in the slab starting there.
        """
        arrays = (x, y, z)
        for d in range(self.ndim):
            if arrays[d] is None:
                raise ValueError(
                    f"{self.ndim}D plan requires coordinate arrays "
                    f"{', '.join(_COORD_NAMES[:self.ndim])}"
                )
        for d in range(self.ndim, 3):
            if arrays[d] is not None:
                raise ValueError(
                    f"{self.ndim}D plan takes only the coordinate arrays "
                    f"{', '.join(_COORD_NAMES[:self.ndim])}"
                )
        coords = [np.asarray(a, dtype=np.float64) for a in arrays[:self.ndim]]
        m = coords[0].shape[0] if coords[0].ndim == 1 else -1
        for d, c in enumerate(coords):
            if c.ndim != 1 or c.shape[0] != m:
                raise ValueError("coordinate arrays must be 1-D and of equal length")
            if not np.all(np.isfinite(c)):
                raise ValueError(
                    f"coordinate array {_COORD_NAMES[d]!r} contains non-finite values"
                )
        if m == 0:
            raise ValueError("at least one nonuniform point is required")

        grid_coords = [
            to_grid_coordinates(coords[d], self.fine_shape[d])
            for d in range(self.ndim)
        ]
        self._owned_idx = partition_points_by_slab(grid_coords, self.fine_shape,
                                                   self.slabs)
        self._rank_coords = []
        self._rank_sorts = []
        pad_lo, _ = halo_pads(self.kernel.width)
        bin_shape = default_bin_shape(self.ndim)
        for r, idx in enumerate(self._owned_idx):
            local = [gc[idx] for gc in grid_coords]
            self._rank_coords.append(local)
            if idx.shape[0] == 0:
                self._rank_sorts.append(None)
                continue
            start, stop = self.slabs[r]
            height = pad_lo + (stop - start) + (self.kernel.width - pad_lo)
            shifted = [local[0] - (start - pad_lo)] + local[1:]
            self._rank_sorts.append(
                bin_sort(shifted, (height,) + self.fine_shape[1:], bin_shape)
            )
        self.n_points = m
        self._points_ready = True
        return self

    # ------------------------------------------------------------------ #
    # collective drivers (all ranks live in-process; see SimComm)
    # ------------------------------------------------------------------ #
    def _scatter(self, payloads, root=0):
        received = [None] * self.n_ranks
        received[root] = self._comms[root].scatter(payloads, root=root)
        for r in range(self.n_ranks):
            if r != root:
                received[r] = self._comms[r].scatter(None, root=root)
        return received

    def _gather(self, payloads, root=0):
        for r in range(self.n_ranks):
            if r != root:
                self._comms[r].gather(payloads[r], root=root)
        return self._comms[root].gather(payloads[root], root=root)

    def _comm_mark(self):
        shared = self._comms[0]
        return shared.comm_seconds, shared.comm_bytes

    def _comm_delta(self, mark):
        s, b = self._comm_mark()
        return s - mark[0], b - mark[1]

    # ------------------------------------------------------------------ #
    # halo exchange
    # ------------------------------------------------------------------ #
    def _halo_export(self, padded_blocks):
        """Type-1 halo: ship pad rows to their owners, accumulate everywhere.

        Returns each rank's *unpadded* owned slab ``(n_trans, h_r, ...)``
        with every contribution -- interior, self-wrapped pads (local, free)
        and imported neighbour pads -- accumulated.  Payloads are pure
        ndarrays (row order is structurally determined by
        :func:`~repro.core.slab.halo_row_map`, so no index arrays travel),
        which keeps the charged bytes exactly the slab-boundary volume.
        """
        cplx = self.precision.complex_dtype
        pad_lo, _ = halo_pads(self.kernel.width)
        rest = self.fine_shape[1:]
        own = [
            np.zeros((self.n_trans, stop - start) + rest, dtype=cplx)
            for start, stop in self.slabs
        ]
        row_maps = [
            halo_row_map(self.fine_shape, self.slabs, r, self.kernel.width)
            for r in range(self.n_ranks)
        ]
        send = [[None] * self.n_ranks for _ in range(self.n_ranks)]
        for r, (start, stop) in enumerate(self.slabs):
            if start == stop:
                continue
            h = stop - start
            rows, owners = row_maps[r]
            blk = padded_blocks[r]
            own[r][...] = blk[:, pad_lo:pad_lo + h]
            for i in range(blk.shape[1]):
                if pad_lo <= i < pad_lo + h:
                    continue
                if owners[i] == r:  # periodic wrap back onto our own slab
                    own[r][:, rows[i] - start] += blk[:, i]
            for d in range(self.n_ranks):
                if d == r:
                    continue
                sel = np.nonzero(owners == d)[0]
                if sel.size:
                    send[r][d] = np.ascontiguousarray(blk[:, sel])
        mark = self._comm_mark()
        recv = exchange_all(self._comms, send)
        halo_s, halo_bytes = self._comm_delta(mark)
        for d, (d_start, d_stop) in enumerate(self.slabs):
            for r in range(self.n_ranks):
                if r == d or recv[d][r] is None:
                    continue
                rows_r, owners_r = row_maps[r]
                sel = np.nonzero(owners_r == d)[0]
                block = recv[d][r]
                for j, i in enumerate(sel):
                    own[d][:, rows_r[i] - d_start] += block[:, j]
        return own, halo_s, halo_bytes

    def _halo_import(self, own):
        """Type-2 halo: fetch the neighbour rows each padded block reads.

        The exact transpose of :meth:`_halo_export` -- rank ``d`` needs every
        padded row of its block, and the rows owned by rank ``r`` travel
        ``r -> d`` in ``d``'s structural row order -- so the traffic volume
        is identical to the export direction (the accounting tests pin both
        against the same analytic formula).  Ranks with empty slabs own no
        points and import nothing.
        """
        cplx = self.precision.complex_dtype
        width = self.kernel.width
        rest = self.fine_shape[1:]
        row_maps = [
            halo_row_map(self.fine_shape, self.slabs, r, width)
            for r in range(self.n_ranks)
        ]
        send = [[None] * self.n_ranks for _ in range(self.n_ranks)]
        for d, (d_start, d_stop) in enumerate(self.slabs):
            if d_start == d_stop:
                continue
            rows_d, owners_d = row_maps[d]
            for r in range(self.n_ranks):
                if r == d:
                    continue
                sel = np.nonzero(owners_d == r)[0]
                if sel.size:
                    r_start = self.slabs[r][0]
                    send[r][d] = np.ascontiguousarray(
                        own[r][:, rows_d[sel] - r_start]
                    )
        mark = self._comm_mark()
        recv = exchange_all(self._comms, send)
        halo_s, halo_bytes = self._comm_delta(mark)
        padded = []
        for d, (d_start, d_stop) in enumerate(self.slabs):
            h = d_stop - d_start
            if h == 0:
                padded.append(None)
                continue
            rows_d, owners_d = row_maps[d]
            blk = np.empty((self.n_trans, h + width) + rest, dtype=cplx)
            own_sel = np.nonzero(owners_d == d)[0]
            blk[:, own_sel] = own[d][:, rows_d[own_sel] - d_start]
            for r in range(self.n_ranks):
                if r == d or recv[d][r] is None:
                    continue
                sel = np.nonzero(owners_d == r)[0]
                blk[:, sel] = recv[d][r]
            padded.append(blk)
        return padded, halo_s, halo_bytes

    # ------------------------------------------------------------------ #
    # slab-decomposed FFT
    # ------------------------------------------------------------------ #
    def _distributed_fft(self, blocks, forward, ffts):
        """FFT the slab-partitioned fine grid; returns new slab blocks.

        For multi-dimensional grids: local (inverse) FFTs along the fully
        owned axes ``1..d-1`` (row-independent, hence overlappable with the
        halo exchange), an all-to-all transpose to axis-1 column slabs, the
        axis-0 FFT, and the transpose back.  1-D grids fall back to
        gather -> root FFT -> scatter (there is no owned axis to keep local).
        Unnormalized-inverse factors compose exactly: the two stages multiply
        by the sizes of their own axes, whose product is the full grid size.
        """
        cplx_sz = self.precision.complex_itemsize
        local_fft_s = 0.0
        transpose_s = 0.0
        transpose_bytes = 0

        def run(fft, blk, axes):
            return fft.forward(blk, axes=axes) if forward else fft.inverse(blk, axes=axes)

        if self.ndim == 1:
            mark = self._comm_mark()
            gathered = self._gather(blocks)
            full = np.concatenate(gathered, axis=1)
            full = run(ffts[0], full, (1,))
            out = self._scatter([
                np.ascontiguousarray(full[:, start:stop])
                for start, stop in self.slabs
            ])
            dt, db = self._comm_delta(mark)
            return out, local_fft_s, dt, db

        # Stage 1: local FFTs along the fully-owned axes (grid axes 1..d-1).
        owned_axes = tuple(range(2, self.ndim + 1))
        stage1 = []
        for r, blk in enumerate(blocks):
            if blk.size:
                blk = run(ffts[r], blk, owned_axes)
                prof = fft_kernel_profile(blk.shape[2:], cplx_sz).scaled(
                    blk.shape[0] * blk.shape[1]
                )
                t = self._cost_models[r].kernel_time(
                    prof, self.devices[r].contention_factor
                )
                local_fft_s = max(local_fft_s, t)
            stage1.append(blk)

        # Stage 2: all-to-all transpose to axis-1 column slabs.
        col_slabs = slab_partition(self.fine_shape[1], self.n_ranks)
        send = [
            [np.ascontiguousarray(stage1[r][:, :, c0:c1]) for c0, c1 in col_slabs]
            for r in range(self.n_ranks)
        ]
        mark = self._comm_mark()
        recv = exchange_all(self._comms, send)
        dt, db = self._comm_delta(mark)
        transpose_s += dt
        transpose_bytes += db
        stage2 = [np.concatenate(recv[d], axis=1) for d in range(self.n_ranks)]

        # Stage 3: the FFT along the split axis (grid axis 0, now complete).
        for d in range(self.n_ranks):
            if stage2[d].size:
                stage2[d] = run(ffts[d], stage2[d], (1,))

        # Stage 4: transpose back to axis-0 slabs.
        send = [
            [np.ascontiguousarray(stage2[d][:, r0:r1]) for r0, r1 in self.slabs]
            for d in range(self.n_ranks)
        ]
        mark = self._comm_mark()
        recv = exchange_all(self._comms, send)
        dt, db = self._comm_delta(mark)
        transpose_s += dt
        transpose_bytes += db
        out = [np.concatenate(recv[r], axis=2) for r in range(self.n_ranks)]
        return out, local_fft_s, transpose_s, transpose_bytes

    # ------------------------------------------------------------------ #
    # rank-local deconvolution geometry
    # ------------------------------------------------------------------ #
    def _mode_rows(self, rank):
        """Centred-mode positions and fine rows rank-local to ``rank``.

        Returns ``(k_positions, rows_local)``: the indices along the output
        mode axis 0 whose fine-grid row (``k mod nf0``) lives in this rank's
        slab, and those rows shifted into the unpadded local block.
        """
        start, stop = self.slabs[rank]
        idx0 = self.correction._mode_slices()[0]
        mask = (idx0 >= start) & (idx0 < stop)
        return np.nonzero(mask)[0], idx0[mask] - start

    def _mode_factors(self, k_positions, dtype):
        """Broadcast correction factors restricted to the owned mode rows."""
        fac = None
        for d in range(self.ndim):
            f = self.correction.factors[d]
            if d == 0:
                f = f[k_positions]
            shape = [1] * self.ndim
            shape[d] = f.shape[0]
            f = f.reshape(shape)
            fac = f if fac is None else fac * f
        real_dtype = np.real(np.zeros(1, dtype=dtype)).dtype
        return fac.astype(real_dtype, copy=False)

    # ------------------------------------------------------------------ #
    # execute
    # ------------------------------------------------------------------ #
    def execute(self, data):
        """Run the distributed transform on one or ``n_trans`` data vectors.

        Type 1 takes strengths ``(M,)`` / ``(n_trans, M)`` and returns mode
        coefficients; type 2 takes mode coefficients and returns point
        values, exactly as :meth:`repro.core.plan.Plan.execute` shapes them.
        The run is fully deterministic -- ranks are driven in a fixed order
        with no threading -- so two executes on identical inputs are
        bit-identical.  Sets :attr:`halo_bytes` and :attr:`last_breakdown`.
        """
        if not self._points_ready:
            raise RuntimeError("set_pts must be called before execute")
        data = np.asarray(data)
        cplx = self.precision.complex_dtype
        single = ((self.n_points,) if self.nufft_type == 1 else self.n_modes)
        if data.shape == single:
            if self.n_trans != 1:
                raise ValueError(
                    f"plan expects n_trans={self.n_trans} stacked inputs of "
                    f"shape {single}"
                )
            batched = False
        elif data.shape == (self.n_trans,) + single:
            batched = True
        else:
            raise ValueError(
                f"data shape {data.shape} does not match expected {single} "
                f"(or ({self.n_trans}, *{single}) for batched transforms)"
            )
        stack = np.ascontiguousarray(
            (data if batched else data[None]).astype(cplx, copy=False)
        )

        pipelines = [PipelineProfile() for _ in range(self.n_ranks)]
        ffts = [DeviceFFT(pipeline=p, warm=True) for p in pipelines]
        if self.nufft_type == 1:
            out, phases = self._execute_type1(stack, pipelines, ffts)
        else:
            out, phases = self._execute_type2(stack, pipelines, ffts)

        compute_s = 0.0
        for r, pipeline in enumerate(pipelines):
            times = self._cost_models[r].pipeline_times(
                pipeline, contention_factor=self.devices[r].contention_factor
            )
            compute_s = max(compute_s, times["exec"])
        self.halo_bytes = phases["halo_bytes"]
        self.last_breakdown = DistributedBreakdown(
            n_ranks=self.n_ranks,
            compute_s=compute_s,
            scatter_s=phases["scatter_s"],
            halo_s=phases["halo_s"],
            transpose_s=phases["transpose_s"],
            gather_s=phases["gather_s"],
            local_fft_s=phases["local_fft_s"],
            halo_bytes=phases["halo_bytes"],
            transpose_bytes=phases["transpose_bytes"],
        )
        return out if batched else out[0]

    def _execute_type1(self, stack, pipelines, ffts):
        cplx = self.precision.complex_dtype
        # Scatter each rank its owned points' strengths.
        mark = self._comm_mark()
        strengths = self._scatter([
            np.ascontiguousarray(stack[:, idx]) for idx in self._owned_idx
        ])
        scatter_s, _ = self._comm_delta(mark)

        # Local spread onto the padded slabs.
        padded = []
        for r, (start, stop) in enumerate(self.slabs):
            if stop == start:
                padded.append(None)
                continue
            padded.append(spread_to_slab(
                self.fine_shape, self._rank_coords[r], strengths[r],
                self.kernel, self.slabs[r], dtype=cplx,
            ))
            if self._rank_sorts[r] is not None:
                for prof in spread_kernel_profiles(
                    SpreadMethod.GM, self._rank_sorts[r], self.kernel,
                    self.precision, spec=self.devices[r].spec,
                ):
                    pipelines[r].add_kernel(prof, phase="exec")

        own, halo_s, halo_bytes = self._halo_export(padded)
        own, local_fft_s, transpose_s, transpose_bytes = self._distributed_fft(
            own, forward=self.isign < 0, ffts=ffts
        )

        # Rank-local deconvolution of the owned mode rows, then gather.
        payloads = []
        for r in range(self.n_ranks):
            k_positions, rows_local = self._mode_rows(r)
            if k_positions.size == 0:
                payloads.append(None)
                continue
            idx = self.correction._mode_slices()
            sel = [rows_local] + [idx[d] for d in range(1, self.ndim)]
            gathered = own[r][(slice(None),) + np.ix_(*sel)]
            scaled = (gathered * self._mode_factors(k_positions, cplx)).astype(
                cplx, copy=False
            )
            pipelines[r].add_kernel(
                deconvolve_kernel_profile(
                    scaled.shape[1:], self.precision.complex_itemsize
                ),
                phase="exec",
            )
            payloads.append((k_positions, scaled))
        mark = self._comm_mark()
        parts = self._gather(payloads)
        gather_s, _ = self._comm_delta(mark)

        out = np.empty((self.n_trans,) + self.n_modes, dtype=cplx)
        for part in parts:
            if part is not None:
                k_positions, scaled = part
                out[:, k_positions] = scaled
        return out, {
            "scatter_s": scatter_s, "halo_s": halo_s,
            "transpose_s": transpose_s, "gather_s": gather_s,
            "local_fft_s": local_fft_s, "halo_bytes": halo_bytes,
            "transpose_bytes": transpose_bytes,
        }

    def _execute_type2(self, stack, pipelines, ffts):
        cplx = self.precision.complex_dtype
        rest = self.fine_shape[1:]
        # Scatter each rank its owned mode rows.
        mark = self._comm_mark()
        mode_blocks = self._scatter([
            np.ascontiguousarray(stack[:, self._mode_rows(r)[0]])
            for r in range(self.n_ranks)
        ])
        scatter_s, _ = self._comm_delta(mark)

        # Rank-local pre-correction onto the owned (unpadded) fine slab.
        own = []
        idx = self.correction._mode_slices()
        for r, (start, stop) in enumerate(self.slabs):
            fine_slab = np.zeros((self.n_trans, stop - start) + rest, dtype=cplx)
            k_positions, rows_local = self._mode_rows(r)
            if k_positions.size:
                sel = [rows_local] + [idx[d] for d in range(1, self.ndim)]
                fine_slab[(slice(None),) + np.ix_(*sel)] = (
                    mode_blocks[r] * self._mode_factors(k_positions, cplx)
                )
                pipelines[r].add_kernel(
                    deconvolve_kernel_profile(
                        (k_positions.size,) + self.n_modes[1:],
                        self.precision.complex_itemsize,
                        name="precorrect",
                    ),
                    phase="exec",
                )
            own.append(fine_slab)

        own, local_fft_s, transpose_s, transpose_bytes = self._distributed_fft(
            own, forward=self.isign < 0, ffts=ffts
        )
        padded, halo_s, halo_bytes = self._halo_import(own)

        # Local interpolation at the owned points, then gather by index.
        payloads = []
        for r in range(self.n_ranks):
            idx_r = self._owned_idx[r]
            if idx_r.shape[0] == 0:
                payloads.append(None)
                continue
            values = interp_from_slab(
                padded[r], self._rank_coords[r], self.kernel, self.slabs[r],
                dtype=cplx,
            )
            for prof in interp_kernel_profiles(
                SpreadMethod.GM, self._rank_sorts[r], self.kernel,
                self.precision, spec=self.devices[r].spec,
            ):
                pipelines[r].add_kernel(prof, phase="exec")
            payloads.append((idx_r, values))
        mark = self._comm_mark()
        parts = self._gather(payloads)
        gather_s, _ = self._comm_delta(mark)

        out = np.empty((self.n_trans, self.n_points), dtype=cplx)
        for part in parts:
            if part is not None:
                idx_r, values = part
                out[:, idx_r] = values
        return out, {
            "scatter_s": scatter_s, "halo_s": halo_s,
            "transpose_s": transpose_s, "gather_s": gather_s,
            "local_fft_s": local_fft_s, "halo_bytes": halo_bytes,
            "transpose_bytes": transpose_bytes,
        }

    # ------------------------------------------------------------------ #
    # reporting / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def comm_seconds(self):
        """Total modelled communication seconds accumulated so far."""
        return self._comms[0].comm_seconds

    def destroy(self):
        """Release the node's device contexts (idempotent)."""
        self.node.release_all()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.destroy()
        return False
