"""Single-node multi-GPU weak-scaling experiment (paper Fig. 9).

Weak scaling fixes the *per-rank* problem size (the Table II slicing/merging
NUFFTs) and grows the number of MPI ranks from 1 to beyond one rank per GPU.
With ideal weak scaling the per-rank wall-clock time stays flat; the paper
observes exactly that up to one rank per GPU on both Cori GPU (8 V100) and
Summit (6 V100), followed by rapid deterioration once ranks start sharing
devices.  The driver here reproduces that by combining:

* the per-rank NUFFT model time (setup + exec + host-device transfers),
* the device contention factor from ranks sharing a GPU, and
* the collective-communication cost of the scatter/reduce around the NUFFTs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.options import default_bin_shape
from ..metrics.modeling import model_cufinufft, sample_spread_stats
from .comm import CommCostModel
from .node import CORI_GPU_NODE, Node

__all__ = [
    "WeakScalingPoint",
    "WeakScalingResult",
    "run_weak_scaling",
    "FleetScalingPoint",
    "FleetScalingResult",
    "run_weak_scaling_fleet",
    "StrongScalingPoint",
    "StrongScalingResult",
    "run_strong_scaling_multinode",
]


@dataclass(frozen=True)
class WeakScalingPoint:
    """Per-rank timings for one rank count."""

    n_ranks: int
    setup_s: float
    exec_s: float
    transfer_s: float
    comm_s: float

    @property
    def total_s(self):
        return self.setup_s + self.exec_s + self.transfer_s + self.comm_s


@dataclass
class WeakScalingResult:
    """Weak-scaling curve for one node type and one NUFFT task."""

    node_name: str
    task_label: str
    n_gpus: int
    points: list = field(default_factory=list)

    def efficiency(self):
        """Weak-scaling efficiency relative to one rank (1.0 = ideal)."""
        if not self.points:
            return []
        base = self.points[0].total_s
        return [base / p.total_s for p in self.points]

    def rows(self):
        """Table rows: (ranks, setup ms, exec ms, total s, efficiency)."""
        eff = self.efficiency()
        return [
            (
                p.n_ranks,
                p.setup_s * 1e3,
                p.exec_s * 1e3,
                p.total_s,
                eff[i],
            )
            for i, p in enumerate(self.points)
        ]


def run_weak_scaling(nufft_type, n_modes, n_points_per_rank, eps, node_spec=None,
                     max_ranks=None, precision="double", task_label="",
                     rng=None, max_sample=1 << 20, backend="device_sim",
                     tune="off", tuner=None):
    """Run the Fig. 9 weak-scaling sweep for one NUFFT task.

    Parameters
    ----------
    nufft_type, n_modes, n_points_per_rank, eps
        The per-rank NUFFT problem (Table II sizes at paper scale).
    node_spec : NodeSpec, optional
        Node to model (Cori GPU by default; pass ``SUMMIT_NODE`` for Summit).
    max_ranks : int, optional
        Largest rank count to sweep; defaults to twice the number of GPUs so
        the post-saturation regime is visible, as in the paper's plots.
    precision : str
        ``"double"`` for the M-TIP requirement of eps = 1e-12.
    backend : str
        Execution backend whose stage profiles price the per-rank NUFFT;
        must record profiles (``"device_sim"``), like every modelled figure.
    tune : str
        ``"off"`` runs the paper's hard-coded plan parameters; ``"model"`` /
        ``"measure"`` price the per-rank NUFFT with an autotuned
        configuration instead (see :mod:`repro.tuning`).
    tuner : Autotuner, optional
        Tuner to consult when tuning is enabled (a shared-cache default
        otherwise).
    """
    node_spec = node_spec if node_spec is not None else CORI_GPU_NODE
    node = Node(spec=node_spec)
    if max_ranks is None:
        max_ranks = 2 * node_spec.n_gpus
    comm_cost = CommCostModel()

    # The per-rank NUFFT is identical for every rank, so model it once and
    # apply the rank-dependent contention/communication factors.
    opts = None
    method = "auto"
    bin_shape = default_bin_shape(len(n_modes))
    if tune == "off":
        if tuner is not None:
            raise ValueError(
                "tuner has no effect with tune='off'; pass tune='model' or "
                "tune='measure' to enable autotuning"
            )
    else:
        from ..tuning import TuningProblem, default_autotuner

        tuner = tuner if tuner is not None else default_autotuner()
        problem = TuningProblem(nufft_type, n_modes, n_points_per_rank, eps,
                                precision)
        opts = tuner.tuned_opts(problem, mode=tune, include_backend=False)
        method = opts.method
        bin_shape = opts.resolved_bin_shape(len(n_modes))
    stats = sample_spread_stats(
        "rand", n_points_per_rank, _fine_shape_for(n_modes, eps),
        bin_shape, rng=rng, max_sample=max_sample,
    )
    base = model_cufinufft(
        nufft_type, n_modes, n_points_per_rank, eps,
        method=method, distribution="rand", precision=precision, opts=opts,
        stats=stats, backend=backend,
    )

    result = WeakScalingResult(
        node_name=node_spec.name,
        task_label=task_label or f"type{nufft_type} N={n_modes[0]}^3",
        n_gpus=node_spec.n_gpus,
    )
    bytes_per_rank = n_points_per_rank * (16 if precision == "double" else 8)
    for n_ranks in range(1, max_ranks + 1):
        contention = node.contention_for_ranks(n_ranks)
        comm_s = comm_cost.collective_time(bytes_per_rank * n_ranks, n_ranks)
        point = WeakScalingPoint(
            n_ranks=n_ranks,
            setup_s=base.times["setup"] * contention,
            exec_s=base.times["exec"] * contention,
            transfer_s=base.times["mem"],
            comm_s=comm_s,
        )
        result.points.append(point)
    return result


def _fine_shape_for(n_modes, eps):
    from ..core.gridsize import fine_grid_shape
    from ..kernels.es_kernel import ESKernel

    kernel = ESKernel.from_tolerance(eps)
    return fine_grid_shape(n_modes, kernel.width)


# --------------------------------------------------------------------------- #
# service-backed fleet weak scaling
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FleetScalingPoint:
    """Serving metrics for one fleet size (fixed per-device request load)."""

    n_devices: int
    n_requests: int
    makespan_s: float
    throughput_rps: float
    mean_utilization: float


@dataclass
class FleetScalingResult:
    """Weak-scaling curve of the transform service over a device fleet."""

    task_label: str
    requests_per_device: int
    points: list = field(default_factory=list)

    def efficiency(self):
        """Scaling efficiency vs the 1-device point (1.0 = linear).

        Weak scaling: the per-device load is fixed, so with ideal scaling
        ``throughput(N) = N * throughput(1)``.
        """
        if not self.points:
            return []
        base = self.points[0].throughput_rps
        return [p.throughput_rps / (base * p.n_devices) for p in self.points]

    def rows(self):
        """Table rows: (devices, requests, makespan ms, req/s, util, efficiency)."""
        eff = self.efficiency()
        return [
            (p.n_devices, p.n_requests, p.makespan_s * 1e3, p.throughput_rps,
             p.mean_utilization, eff[i])
            for i, p in enumerate(self.points)
        ]


def run_weak_scaling_fleet(nufft_type=2, n_modes=(32, 32, 32),
                           n_points_per_rank=20_000, eps=1e-6,
                           requests_per_device=4, max_devices=4,
                           precision="double", backend="auto",
                           task_label="", seed=0, service_kwargs=None,
                           warmup=True, rounds=2, tune="off", tuner=None,
                           tuning_cache_path=None):
    """Weak-scale the transform service from 1 to ``max_devices`` devices.

    The serving analogue of the paper's Fig. 9 experiment: each simulated
    device ("rank") is given a fixed load -- ``requests_per_device`` one-shot
    transforms over its own point set of ``n_points_per_rank`` points -- and
    the fleet grows.  ``n_modes`` is always a tuple here: the uniform grid
    for types 1/2, and the per-dimension spectral extent of the random
    targets (its length giving the dimension) for type 3.  Per-rank point sets are seeded deterministically, so
    each sweep size serves an identical per-device workload.  Each rank's
    requests coalesce into one fused block, blocks land on distinct devices
    via least-loaded placement, and the modelled makespan includes the
    host-side dispatch serialization and the shared-host-link h2d contention
    that bend the curve below ideal.

    With ``warmup`` (default) one unmeasured round first fills the plan pool
    and the timelines are then rewound, so the reported makespan/throughput
    describe *steady-state* serving over ``rounds`` rounds -- plan creation
    amortized away, dispatch and host-link contention still in.

    ``tune`` applies the service-level autotuning policy (``"model"`` /
    ``"measure"``, see :mod:`repro.tuning`) to every fleet size of the
    sweep; one shared :class:`~repro.tuning.Autotuner` (``tuner``, or a
    fresh one over ``tuning_cache_path``) serves the whole sweep, so the
    per-rank problem is tuned exactly once.

    Returns a :class:`FleetScalingResult`; efficiency near 1.0 up to
    ``max_devices`` is the serving counterpart of the paper's flat region up
    to one rank per GPU.
    """
    from ..service import TransformService  # local import: service builds on cluster

    if max_devices < 1:
        raise ValueError(f"max_devices must be >= 1, got {max_devices}")
    if tune == "off":
        if tuner is not None or tuning_cache_path is not None:
            raise ValueError(
                "tuner/tuning_cache_path have no effect with tune='off'; "
                "pass tune='model' or tune='measure' to enable autotuning"
            )
    elif tuner is None:
        from ..tuning import Autotuner, TuningCache

        tuner = Autotuner(cache=TuningCache(tuning_cache_path))
    n_modes = tuple(int(n) for n in n_modes)
    ndim = len(n_modes)
    result = FleetScalingResult(
        task_label=task_label or f"type{nufft_type} N={n_modes[0]}^{ndim} service",
        requests_per_device=int(requests_per_device),
    )

    workload_cache = {}

    def rank_workload(rank):
        # Deterministic per rank, so generate once: every round and every
        # fleet size of the sweep serves the identical per-rank workload.
        if rank in workload_cache:
            return workload_cache[rank]
        rng = np.random.default_rng((seed, rank))
        coords = dict(zip("xyz", rng.uniform(-np.pi, np.pi, (ndim, n_points_per_rank))))
        if nufft_type == 3:
            # Type-3 targets span +-n_modes[d]/2, reading n_modes as the
            # per-dimension spectral extent (as bench_throughput does).
            coords.update(zip("stu", [
                rng.uniform(-0.5 * n_modes[d], 0.5 * n_modes[d], n_points_per_rank)
                for d in range(ndim)
            ]))
        if nufft_type in (1, 3):
            data_shape = (n_points_per_rank,)
        else:
            data_shape = n_modes
        datas = [
            rng.standard_normal(data_shape) + 1j * rng.standard_normal(data_shape)
            for _ in range(requests_per_device)
        ]
        workload_cache[rank] = (coords, datas)
        return workload_cache[rank]

    def submit_round(service, n_devices):
        for rank in range(n_devices):
            coords, datas = rank_workload(rank)
            for data in datas:
                service.submit(nufft_type=nufft_type, n_modes=n_modes, data=data,
                               eps=eps, precision=precision, backend=backend,
                               **coords)

    for n_devices in range(1, int(max_devices) + 1):
        service = TransformService(n_devices=n_devices, tune=tune, tuner=tuner,
                                   **(service_kwargs or {}))
        if warmup:
            submit_round(service, n_devices)
            service.flush()
            service.reset_metrics()
        for _ in range(max(1, int(rounds))):
            submit_round(service, n_devices)
            service.flush()
        result.points.append(FleetScalingPoint(
            n_devices=n_devices,
            n_requests=service.stats.requests_served,
            makespan_s=service.makespan(),
            throughput_rps=service.throughput_rps(),
            mean_utilization=float(np.mean(service.utilization())),
        ))
        service.close()
    return result


# --------------------------------------------------------------------------- #
# multi-node strong scaling over the distributed plan
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class StrongScalingPoint:
    """One rank count of a fixed-total-problem (strong-scaling) sweep."""

    n_ranks: int
    compute_s: float
    comm_s: float
    overlap_s: float
    makespan_s: float
    halo_bytes: int
    transpose_bytes: int
    rel_err: float


@dataclass
class StrongScalingResult:
    """Strong-scaling curve of one distributed NUFFT problem.

    Unlike the weak-scaling sweeps above, the *total* problem is fixed and
    the rank count grows, so ideal scaling halves the makespan per doubling:
    ``efficiency(P) = T(P0) * P0 / (T(P) * P)`` relative to the first swept
    rank count ``P0``.
    """

    node_name: str
    task_label: str
    points: list = field(default_factory=list)

    def efficiency(self):
        """Strong-scaling efficiency relative to the first rank count."""
        if not self.points:
            return []
        base = self.points[0].makespan_s * self.points[0].n_ranks
        return [base / (p.makespan_s * p.n_ranks) for p in self.points]

    def rows(self):
        """Table rows: (ranks, compute ms, comm ms, overlap ms, makespan ms,
        efficiency, halo MB)."""
        eff = self.efficiency()
        return [
            (p.n_ranks, p.compute_s * 1e3, p.comm_s * 1e3, p.overlap_s * 1e3,
             p.makespan_s * 1e3, eff[i], p.halo_bytes / 1e6)
            for i, p in enumerate(self.points)
        ]


def run_strong_scaling_multinode(nufft_type=1, n_modes=(64, 64, 64),
                                 n_points=200_000, eps=1e-9,
                                 rank_counts=(1, 2, 4, 8), node_spec=None,
                                 precision="double", n_trans=1, seed=0,
                                 task_label="", check_equivalence=True):
    """Strong-scale one distributed NUFFT across growing rank counts.

    Fixes a single type-1 or type-2 problem (``n_modes`` x ``n_points`` at
    tolerance ``eps``) and executes it with a
    :class:`~repro.cluster.distributed.DistributedPlan` at every rank count
    in ``rank_counts`` over one ``node_spec`` node (Cori GPU by default,
    ranks round-robined onto its GPUs).  The identical seeded points and
    strengths are reused at every rank count, so the sweep isolates the
    decomposition: modelled makespans combine the slowest rank's kernel time
    (contention included), the SimComm charges of scatter / halo / transpose
    / gather, and the halo-behind-local-FFT overlap credit.

    With ``check_equivalence`` (default) a single-plan reference is computed
    once and every point carries its relative error against it -- the CI
    gate asserts it stays within ``10 * eps``.

    Returns a :class:`StrongScalingResult`.
    """
    from ..core.plan import Plan
    from .distributed import DistributedPlan

    node_spec = node_spec if node_spec is not None else CORI_GPU_NODE
    ndim = len(n_modes)
    rng = np.random.default_rng(seed)
    coords = [rng.uniform(-np.pi, np.pi, n_points) for _ in range(ndim)]
    shape = (n_points,) if nufft_type == 1 else tuple(n_modes)
    data = rng.standard_normal((n_trans,) + shape) \
        + 1j * rng.standard_normal((n_trans,) + shape)
    if n_trans == 1:
        data = data[0]

    reference = None
    ref_scale = 1.0
    if check_equivalence:
        with Plan(nufft_type, n_modes, n_trans=n_trans, eps=eps,
                  precision=precision) as single:
            single.set_pts(*coords)
            reference = np.asarray(single.execute(data))
        ref_scale = max(float(np.max(np.abs(reference))), 1e-300)

    result = StrongScalingResult(
        node_name=node_spec.name,
        task_label=task_label
        or f"type{nufft_type} N={'x'.join(str(n) for n in n_modes)} distributed",
    )
    for n_ranks in rank_counts:
        node = Node(spec=node_spec)
        with DistributedPlan(nufft_type, n_modes, n_ranks=n_ranks,
                             n_trans=n_trans, eps=eps, node=node,
                             precision=precision) as plan:
            plan.set_pts(*coords)
            output = plan.execute(data)
            b = plan.last_breakdown
            rel_err = 0.0
            if reference is not None:
                rel_err = float(
                    np.max(np.abs(np.asarray(output) - reference)) / ref_scale
                )
            result.points.append(StrongScalingPoint(
                n_ranks=int(n_ranks),
                compute_s=b.compute_s,
                comm_s=b.comm_s,
                overlap_s=b.overlap_s,
                makespan_s=b.makespan_s,
                halo_bytes=b.halo_bytes,
                transpose_bytes=b.transpose_bytes,
                rel_err=rel_err,
            ))
    return result
