"""Single-node multi-GPU weak-scaling experiment (paper Fig. 9).

Weak scaling fixes the *per-rank* problem size (the Table II slicing/merging
NUFFTs) and grows the number of MPI ranks from 1 to beyond one rank per GPU.
With ideal weak scaling the per-rank wall-clock time stays flat; the paper
observes exactly that up to one rank per GPU on both Cori GPU (8 V100) and
Summit (6 V100), followed by rapid deterioration once ranks start sharing
devices.  The driver here reproduces that by combining:

* the per-rank NUFFT model time (setup + exec + host-device transfers),
* the device contention factor from ranks sharing a GPU, and
* the collective-communication cost of the scatter/reduce around the NUFFTs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from ..core.options import default_bin_shape
from ..metrics.modeling import model_cufinufft, sample_spread_stats
from .comm import CommCostModel
from .node import CORI_GPU_NODE, Node

__all__ = ["WeakScalingPoint", "WeakScalingResult", "run_weak_scaling"]


@dataclass(frozen=True)
class WeakScalingPoint:
    """Per-rank timings for one rank count."""

    n_ranks: int
    setup_s: float
    exec_s: float
    transfer_s: float
    comm_s: float

    @property
    def total_s(self):
        return self.setup_s + self.exec_s + self.transfer_s + self.comm_s


@dataclass
class WeakScalingResult:
    """Weak-scaling curve for one node type and one NUFFT task."""

    node_name: str
    task_label: str
    n_gpus: int
    points: list = field(default_factory=list)

    def efficiency(self):
        """Weak-scaling efficiency relative to one rank (1.0 = ideal)."""
        if not self.points:
            return []
        base = self.points[0].total_s
        return [base / p.total_s for p in self.points]

    def rows(self):
        """Table rows: (ranks, setup ms, exec ms, total s, efficiency)."""
        eff = self.efficiency()
        return [
            (
                p.n_ranks,
                p.setup_s * 1e3,
                p.exec_s * 1e3,
                p.total_s,
                eff[i],
            )
            for i, p in enumerate(self.points)
        ]


def run_weak_scaling(nufft_type, n_modes, n_points_per_rank, eps, node_spec=None,
                     max_ranks=None, precision="double", task_label="",
                     rng=None, max_sample=1 << 20, backend="device_sim"):
    """Run the Fig. 9 weak-scaling sweep for one NUFFT task.

    Parameters
    ----------
    nufft_type, n_modes, n_points_per_rank, eps
        The per-rank NUFFT problem (Table II sizes at paper scale).
    node_spec : NodeSpec, optional
        Node to model (Cori GPU by default; pass ``SUMMIT_NODE`` for Summit).
    max_ranks : int, optional
        Largest rank count to sweep; defaults to twice the number of GPUs so
        the post-saturation regime is visible, as in the paper's plots.
    precision : str
        ``"double"`` for the M-TIP requirement of eps = 1e-12.
    backend : str
        Execution backend whose stage profiles price the per-rank NUFFT;
        must record profiles (``"device_sim"``), like every modelled figure.
    """
    node_spec = node_spec if node_spec is not None else CORI_GPU_NODE
    node = Node(spec=node_spec)
    if max_ranks is None:
        max_ranks = 2 * node_spec.n_gpus
    comm_cost = CommCostModel()

    # The per-rank NUFFT is identical for every rank, so model it once and
    # apply the rank-dependent contention/communication factors.
    stats = sample_spread_stats(
        "rand", n_points_per_rank, _fine_shape_for(n_modes, eps),
        default_bin_shape(len(n_modes)), rng=rng, max_sample=max_sample,
    )
    base = model_cufinufft(
        nufft_type, n_modes, n_points_per_rank, eps,
        method="auto", distribution="rand", precision=precision, stats=stats,
        backend=backend,
    )

    result = WeakScalingResult(
        node_name=node_spec.name,
        task_label=task_label or f"type{nufft_type} N={n_modes[0]}^3",
        n_gpus=node_spec.n_gpus,
    )
    bytes_per_rank = n_points_per_rank * (16 if precision == "double" else 8)
    for n_ranks in range(1, max_ranks + 1):
        contention = node.contention_for_ranks(n_ranks)
        comm_s = comm_cost.collective_time(bytes_per_rank * n_ranks, n_ranks)
        point = WeakScalingPoint(
            n_ranks=n_ranks,
            setup_s=base.times["setup"] * contention,
            exec_s=base.times["exec"] * contention,
            transfer_s=base.times["mem"],
            comm_s=comm_s,
        )
        result.points.append(point)
    return result


def _fine_shape_for(n_modes, eps):
    from ..core.gridsize import fine_grid_shape
    from ..kernels.es_kernel import ESKernel

    kernel = ESKernel.from_tolerance(eps)
    return fine_grid_shape(n_modes, kernel.width)
