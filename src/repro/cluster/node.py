"""Compute-node model: several simulated GPUs and round-robin rank assignment.

The paper's two HPC systems:

* NERSC **Cori GPU**: Intel Skylake host with 8 NVIDIA V100s per node;
* OLCF **Summit**: IBM Power9 host with 6 NVIDIA V100s per node.

M-TIP assigns each MPI rank a GPU with ``device_id = rank % gpus_per_node``
(the code snippet in Sec. V-A); when there are more ranks than GPUs, several
ranks share a device and its :attr:`~repro.gpu.device.Device.contention_factor`
rises, which is what makes Fig. 9's weak scaling deteriorate past one rank per
GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpu.device import Device, DeviceSpec, V100_SPEC

__all__ = ["NodeSpec", "Node", "CORI_GPU_NODE", "SUMMIT_NODE"]


@dataclass(frozen=True)
class NodeSpec:
    """Description of a multi-GPU compute node."""

    name: str
    n_gpus: int
    cpu_threads: int
    gpu_spec: DeviceSpec = V100_SPEC
    #: Relative single-thread CPU speed vs the paper's Intel Skylake reference
    #: (Summit's Power9 cores are a little slower per thread).
    cpu_speed_factor: float = 1.0


#: NERSC Cori GPU node: 8 V100s, 40-thread Skylake host (Table II uses 40 CPU threads).
CORI_GPU_NODE = NodeSpec(name="Cori GPU", n_gpus=8, cpu_threads=40)

#: OLCF Summit node: 6 V100s, Power9 host.
SUMMIT_NODE = NodeSpec(name="Summit", n_gpus=6, cpu_threads=42, cpu_speed_factor=0.85)


@dataclass
class Node:
    """A live node instance holding its simulated devices."""

    spec: NodeSpec = field(default_factory=lambda: CORI_GPU_NODE)

    def __post_init__(self):
        self.devices = [
            Device(spec=self.spec.gpu_spec, device_id=i) for i in range(self.spec.n_gpus)
        ]

    @property
    def n_gpus(self):
        return self.spec.n_gpus

    def device_for_rank(self, rank):
        """Round-robin GPU assignment (``device_id = rank % GPUS_PER_NODE``)."""
        if rank < 0:
            raise ValueError("rank must be nonnegative")
        return self.devices[rank % self.spec.n_gpus]

    def assign_ranks(self, n_ranks):
        """Register ``n_ranks`` MPI ranks on their round-robin devices.

        Returns the list of devices, one per rank, with their contexts made
        (so contention factors reflect the sharing).
        """
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        devices = []
        for rank in range(n_ranks):
            dev = self.device_for_rank(rank)
            dev.make_context()
            devices.append(dev)
        return devices

    def release_all(self):
        """Release every context and allocation (between experiments)."""
        for dev in self.devices:
            dev.reset()

    def contention_for_ranks(self, n_ranks):
        """Kernel slowdown factor seen by each rank when ``n_ranks`` share the node."""
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        ranks_on_device_0 = (n_ranks + self.spec.n_gpus - 1) // self.spec.n_gpus
        if ranks_on_device_0 <= 1:
            return 1.0
        return ranks_on_device_0 * 1.05
