"""Global-memory transaction (coalescing and caching) model.

On Volta-class GPUs global memory is moved in 32-byte *sectors*.  A warp's
accesses are coalesced into the minimal set of sectors they touch:

* a warp reading 32 consecutive 4-byte words touches 4 sectors (fully
  coalesced -- the ideal streaming pattern);
* a warp writing 32 *scattered* 4- or 8-byte values touches up to 32 distinct
  sectors, i.e. each access pays for a whole sector even though it uses only a
  fraction of it.

Whether a sector op is served by the 6 MB L2 cache or goes to DRAM depends on
the working set: once the fine grid is much larger than L2, scattered accesses
miss almost always, while *bin-sorted* accesses keep a warp's footprint inside
a few cache lines and hit.

This module provides the counting helpers used by the spreading/interpolation
cost estimators.  All functions are pure and operate on plain numbers so they
are trivially testable.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sectors_for_contiguous_run",
    "streaming_bytes_time_fraction",
    "l2_miss_fraction_random",
    "l2_miss_fraction_localized",
    "scattered_sector_ops",
    "localized_sector_ops",
]


def sectors_for_contiguous_run(run_bytes, sector_bytes=32):
    """Number of 32-byte sectors spanned by one contiguous run of bytes.

    A run of ``b`` contiguous bytes starting at a random (unaligned) offset
    touches on average ``b/sector + 1`` sectors; we use the ceiling of that
    expectation, with a floor of one sector.

    Parameters
    ----------
    run_bytes : float
        Length of the contiguous run in bytes (e.g. ``w * itemsize`` for a
        kernel row written by one thread).
    sector_bytes : int, optional
        DRAM sector granularity.

    Returns
    -------
    float
        Expected sector count (>= 1).
    """
    if run_bytes <= 0:
        raise ValueError(f"run_bytes must be positive, got {run_bytes}")
    return max(1.0, float(np.ceil(run_bytes / sector_bytes)))


def l2_miss_fraction_random(working_set_bytes, l2_bytes):
    """Fraction of *randomly addressed* sector ops that miss L2 to DRAM.

    A standard cache model for uniformly random accesses over a working set
    ``W`` with cache size ``C``: the hit probability is ``min(1, C/W)``.

    Parameters
    ----------
    working_set_bytes : float
        Size of the region being accessed at random (e.g. the whole fine
        grid for unsorted spreading, or the occupied sub-region for a
        clustered distribution).
    l2_bytes : float
        L2 capacity.

    Returns
    -------
    float in [0, 1]
    """
    if working_set_bytes <= 0:
        return 0.0
    hit = min(1.0, l2_bytes / float(working_set_bytes))
    return 1.0 - hit


def l2_miss_fraction_localized(active_footprint_bytes, l2_bytes):
    """Miss fraction for *localized* (bin-sorted) access.

    After bin-sorting, the threads in flight at any moment touch only the
    padded-bin regions of the bins currently being processed; as long as that
    *active footprint* fits in L2 the steady-state miss rate is just the
    compulsory-miss trickle, which we approximate as 2%.  If even the active
    footprint exceeds L2, the model degrades gracefully toward the random
    model.
    """
    if active_footprint_bytes <= 0:
        return 0.0
    if active_footprint_bytes <= l2_bytes:
        return 0.02
    return max(0.02, l2_miss_fraction_random(active_footprint_bytes, l2_bytes))


def scattered_sector_ops(n_accesses, itemsize, sector_bytes=32):
    """Sector ops for accesses at uncorrelated addresses (no coalescing).

    Every access touches its own sector (two if an element straddles a sector
    boundary, which we ignore since ``itemsize <= sector_bytes`` here).

    Parameters
    ----------
    n_accesses : float
        Number of scalar/complex element accesses.
    itemsize : int
        Bytes per element (kept for signature symmetry / validation).
    """
    if itemsize <= 0 or itemsize > sector_bytes:
        raise ValueError(f"itemsize must be in (0, {sector_bytes}], got {itemsize}")
    return float(n_accesses)


def localized_sector_ops(n_rows, row_elements, itemsize, sector_bytes=32, reuse_factor=1.0):
    """Sector ops for row-wise localized access (bin-sorted spreading).

    Each thread touches ``n_rows`` contiguous runs of ``row_elements``
    elements (a 2D spreader writes ``w`` rows of ``w`` cells; a 3D spreader
    writes ``w^2`` rows of ``w`` cells).  Runs coalesce into
    ``ceil(row_bytes / sector)`` sectors, and neighbouring threads of a warp
    that land in the same bin may share sectors; ``reuse_factor >= 1`` divides
    the count to account for that sharing.

    Returns
    -------
    float
        Expected sector ops for the whole set of rows.
    """
    if reuse_factor < 1.0:
        raise ValueError(f"reuse_factor must be >= 1, got {reuse_factor}")
    per_row = sectors_for_contiguous_run(row_elements * itemsize, sector_bytes)
    return float(n_rows) * per_row / reuse_factor


def streaming_bytes_time_fraction(nbytes, bandwidth):
    """Seconds to stream ``nbytes`` at a sustained bandwidth (convenience)."""
    if nbytes < 0:
        raise ValueError("nbytes must be nonnegative")
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    return nbytes / bandwidth
