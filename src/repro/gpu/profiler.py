"""Kernel and pipeline profiles: the operation counts fed to the cost model.

A :class:`KernelProfile` records, for one simulated kernel launch, the
quantities that determine its runtime on the modelled device: arithmetic,
streaming traffic, uncoalesced sector operations and their cache behaviour,
atomic operations and their contention, and launch geometry.  The spreading /
interpolation / FFT / deconvolution implementations build these profiles from
the actual problem data (point coordinates, bin histograms, grid sizes), and
:class:`repro.gpu.costmodel.CostModel` converts them to seconds.

A :class:`PipelineProfile` is an ordered collection of kernel profiles plus
host<->device transfer and allocation records; it is what a
:class:`repro.core.plan.Plan` returns from ``execute`` alongside the numeric
result, and what the benchmark harness turns into "exec" / "total" /
"total+mem" rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict, replace

__all__ = ["KernelProfile", "TransferRecord", "PipelineProfile"]


@dataclass
class KernelProfile:
    """Operation counts for one kernel launch.

    All count fields are floats so that analytic (expected-value) estimates
    can be stored without rounding.

    Attributes
    ----------
    name : str
        Kernel identifier, e.g. ``"spread_2d_sm"``.
    grid_blocks : float
        Number of thread blocks launched.
    block_threads : float
        Threads per block.
    flops : float
        Floating-point operations (kernel evaluations, multiplies, adds).
    stream_bytes : float
        Fully-coalesced global traffic in bytes (reading point data, writing
        contiguous output, copying arrays).
    gather_sector_ops : float
        Uncoalesced non-atomic global accesses, counted in 32-byte sector
        operations (e.g. interpolation reads of scattered grid cells).
    gather_miss_fraction : float
        Fraction of ``gather_sector_ops`` that miss L2 and go to DRAM.
    global_atomic_ops : float
        Individual global atomic add operations issued.
    global_atomic_sector_ops : float
        Sector-level operations after warp coalescing of the atomics (for
        bin-sorted spreading several atomics to one sector merge).
    global_atomic_distinct_addresses : float
        Estimate of distinct addresses targeted (contention model input).
    global_atomic_miss_fraction : float
        Fraction of atomic sector ops whose target line is not resident in L2.
    shared_atomic_ops : float
        Shared-memory atomic adds (SM method step 2).
    shared_atomic_distinct_addresses : float
        Distinct shared-memory addresses targeted per block.
    shared_mem_per_block : float
        Bytes of shared memory requested per block (checked against the
        device limit by the SM spreader).
    """

    name: str
    grid_blocks: float = 1.0
    block_threads: float = 128.0
    flops: float = 0.0
    stream_bytes: float = 0.0
    gather_sector_ops: float = 0.0
    gather_miss_fraction: float = 0.0
    global_atomic_ops: float = 0.0
    global_atomic_sector_ops: float = 0.0
    global_atomic_distinct_addresses: float = 1.0
    global_atomic_miss_fraction: float = 0.0
    shared_atomic_ops: float = 0.0
    shared_atomic_distinct_addresses: float = 1.0
    shared_mem_per_block: float = 0.0

    def validate(self):
        """Raise ``ValueError`` on physically meaningless counts."""
        for name in (
            "grid_blocks",
            "block_threads",
            "flops",
            "stream_bytes",
            "gather_sector_ops",
            "global_atomic_ops",
            "global_atomic_sector_ops",
            "shared_atomic_ops",
            "shared_mem_per_block",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{self.name}: {name} must be nonnegative")
        for name in ("gather_miss_fraction", "global_atomic_miss_fraction"):
            v = getattr(self, name)
            if not (0.0 <= v <= 1.0):
                raise ValueError(f"{self.name}: {name} must be in [0, 1], got {v}")
        if self.global_atomic_distinct_addresses <= 0:
            raise ValueError(f"{self.name}: distinct addresses must be positive")
        if self.shared_atomic_distinct_addresses <= 0:
            raise ValueError(f"{self.name}: shared distinct addresses must be positive")
        return self

    def scaled(self, batch):
        """Profile of one *fused* launch doing ``batch`` copies of this work.

        Every extensive count (blocks, flops, bytes, sector/atomic ops)
        scales; the intensive ones (miss fractions, distinct addresses per
        unit of work, threads per block) do not.  This is how the batched
        engine's fused ``n_trans`` kernels -- and cuFFT's batch API -- are
        priced: ``batch`` transforms' work behind a single launch latency.
        """
        batch = float(batch)
        if batch < 1.0:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if batch == 1.0:
            return self
        return replace(
            self,
            grid_blocks=self.grid_blocks * batch,
            flops=self.flops * batch,
            stream_bytes=self.stream_bytes * batch,
            gather_sector_ops=self.gather_sector_ops * batch,
            global_atomic_ops=self.global_atomic_ops * batch,
            global_atomic_sector_ops=self.global_atomic_sector_ops * batch,
            shared_atomic_ops=self.shared_atomic_ops * batch,
        )

    def to_dict(self):
        return asdict(self)


@dataclass
class TransferRecord:
    """One host<->device transfer or device allocation event."""

    kind: str  # "h2d", "d2h", "alloc"
    nbytes: float
    label: str = ""


@dataclass
class PipelineProfile:
    """Ordered record of everything a Plan did during setup and execution.

    The three timing views reported by the paper map onto this record as:

    * ``exec``       -- kernels tagged ``phase="exec"`` only (spread/interp,
      FFT, deconvolution): the cost of a repeated transform with the same
      nonuniform points;
    * ``total``      -- exec plus the ``phase="setup"`` kernels (bin-index
      computation, sort, subproblem setup) for fresh points;
    * ``total+mem``  -- total plus host<->device transfers and allocations.

    ``allocs`` carries the :class:`~repro.metrics.allocs.AllocStats` of the
    execute call that produced this profile (None for setup/plan pipelines):
    the hot-path buffer-event counts the interop benchmark and its CI gate
    read to assert the zero-copy steady state.
    """

    kernels: list = field(default_factory=list)  # list[(phase, KernelProfile)]
    transfers: list = field(default_factory=list)  # list[TransferRecord]
    allocs: object = None  # AllocStats of the producing execute, if any

    def add_kernel(self, profile, phase="exec"):
        if phase not in ("exec", "setup"):
            raise ValueError(f"phase must be 'exec' or 'setup', got {phase!r}")
        profile.validate()
        self.kernels.append((phase, profile))
        return profile

    def add_transfer(self, kind, nbytes, label=""):
        if kind not in ("h2d", "d2h", "alloc"):
            raise ValueError(f"kind must be 'h2d', 'd2h' or 'alloc', got {kind!r}")
        rec = TransferRecord(kind=kind, nbytes=float(nbytes), label=label)
        self.transfers.append(rec)
        return rec

    def merge(self, other):
        """Append another pipeline's records (used when chaining transforms)."""
        self.kernels.extend(other.kernels)
        self.transfers.extend(other.transfers)
        return self

    # convenience filters -------------------------------------------------
    def exec_kernels(self):
        return [k for phase, k in self.kernels if phase == "exec"]

    def setup_kernels(self):
        return [k for phase, k in self.kernels if phase == "setup"]

    def kernel_by_name(self, name):
        """Return the first kernel profile with the given name (or None)."""
        for _, k in self.kernels:
            if k.name == name:
                return k
        return None

    def total_bytes_transferred(self):
        return sum(t.nbytes for t in self.transfers if t.kind in ("h2d", "d2h"))
