"""Device description and device objects for the simulated GPU.

:class:`DeviceSpec` is a frozen description of the hardware parameters the
cost model needs.  :data:`V100_SPEC` matches the NVIDIA Tesla V100 (SXM2,
16 GB) used for all GPU timings in the paper.  :class:`Device` is a live
device: it owns a :class:`repro.gpu.memory.MemoryPool` (so benchmarks can
report GPU RAM usage like the paper's Table I) and a contention counter used
by the multi-rank weak-scaling model (paper Fig. 9).

:class:`Stream` and :class:`Event` model CUDA streams on the modelled
timeline: a V100 has one compute engine and two copy engines (one per
direction), operations within a stream serialize, and operations in distinct
streams overlap exactly when they occupy distinct engines.  The
:class:`~repro.service.TransformService` uses them to model double-buffered
h2d / exec / d2h overlap across queued requests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["DeviceSpec", "Device", "V100_SPEC", "Stream", "Event"]

#: Hardware engines of the modelled timeline: the h2d copy engine, the
#: compute (kernel) engine and the d2h copy engine.  The V100 has exactly
#: these three, which is what makes stream-level double buffering pay off.
ENGINES = ("h2d", "exec", "d2h")


@dataclass(frozen=True)
class Event:
    """A recorded completion timestamp on the modelled timeline.

    The analogue of a ``cudaEvent``: :meth:`Stream.record_event` captures the
    stream's current frontier and :meth:`Stream.wait_event` makes another
    stream (possibly on another device) wait for it.
    """

    time: float = 0.0


class Stream:
    """An in-order operation queue on one device (``cudaStream`` analogue).

    Overlap model: the device owns one timeline per engine (h2d copy,
    compute, d2h copy).  An enqueued operation starts no earlier than both
    the stream's frontier (in-stream ordering) and its engine's frontier
    (engines serialize across streams), so two streams overlap a transfer
    with a kernel but never two kernels with each other -- the same rules
    real CUDA streams follow on a single-compute-engine device.
    """

    #: Per-stream operation log bound: a long-lived serving process enqueues
    #: indefinitely, and the log exists for debugging/tests only.
    MAX_OPS_LOGGED = 1024

    def __init__(self, device, stream_id=0):
        self.device = device
        self.stream_id = int(stream_id)
        self.ready_at = 0.0
        self.ops = deque(maxlen=self.MAX_OPS_LOGGED)  # (engine, start, end, label)

    def enqueue(self, engine, seconds, label=""):
        """Queue ``seconds`` of work on ``engine``; returns its completion Event.

        When the device carries a :class:`~repro.faults.FaultInjector`, the
        injector's stream-op hook runs first: it may inflate ``seconds``
        (stuck/slow launch) or raise :class:`~repro.faults.DeviceLostError`
        (hard device death) -- the same places a real ``cudaErrorStreamCapture``
        / device-lost error would surface.
        """
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        seconds = float(seconds)
        if seconds < 0.0:
            raise ValueError(f"operation duration must be nonnegative, got {seconds}")
        injector = self.device.fault_injector
        if injector is not None:
            seconds = injector.on_stream_op(self.device, engine, seconds, label)
        elif not self.device.alive:
            from ..faults import DeviceLostError

            raise DeviceLostError(
                f"device {self.device.device_id} is lost (hard fault)"
            )
        start = max(self.ready_at, self.device.engine_frontier[engine])
        end = start + seconds
        self.ready_at = end
        self.device.engine_frontier[engine] = end
        self.device.busy_seconds[engine] += seconds
        self.ops.append((engine, start, end, label))
        return Event(time=end)

    def record_event(self):
        """Capture the stream's current frontier as an :class:`Event`."""
        return Event(time=self.ready_at)

    def wait_event(self, event):
        """Stall the stream until ``event`` has completed (``cudaStreamWaitEvent``)."""
        return self.wait_until(event.time)

    def wait_until(self, time):
        """Stall the stream until the absolute timeline instant ``time``."""
        self.ready_at = max(self.ready_at, float(time))
        return self

    def synchronize(self):
        """Timeline instant at which everything queued so far has completed."""
        return self.ready_at

    def __repr__(self):  # pragma: no cover - debugging nicety
        return (f"Stream(id={self.stream_id}, device={self.device.device_id}, "
                f"ready_at={self.ready_at:.6f}s, ops={len(self.ops)})")


@dataclass(frozen=True)
class DeviceSpec:
    """Hardware parameters of a (simulated) CUDA device.

    The defaults of the module-level :data:`V100_SPEC` instance correspond to
    the Tesla V100 used in the paper (released 2017, 900 GB/s HBM2,
    80 SMs, 49152 B of shared memory usable per thread block).

    Attributes
    ----------
    name : str
        Marketing name, used in reports.
    sm_count : int
        Number of streaming multiprocessors.
    warp_size : int
        Threads per warp.
    max_threads_per_block : int
        CUDA limit on block size.
    shared_mem_per_block : int
        Usable shared memory per thread block, in bytes.  The paper quotes
        49 kB and derives the SM-method bin-size constraint from it.
    l2_cache_bytes : int
        L2 cache size; determines when unsorted global accesses start missing
        to DRAM (the fine grid no longer fits).
    global_mem_bytes : int
        Device memory capacity.
    global_mem_bandwidth : float
        Peak DRAM bandwidth in bytes/second.
    global_mem_transaction_bytes : int
        Minimum DRAM transaction granularity (32 B sectors on Volta).
    fp32_flops : float
        Peak single-precision throughput, FLOP/s.
    fp64_flops : float
        Peak double-precision throughput, FLOP/s.
    global_atomic_ns : float
        Cost of an uncontended global atomic update that misses L2.
    l2_atomic_ns : float
        Cost of an uncontended global atomic resolved in L2.
    shared_atomic_ns : float
        Cost of an uncontended shared-memory atomic update.
    kernel_launch_us : float
        Fixed launch latency per kernel, microseconds.
    pcie_bandwidth : float
        Host <-> device transfer bandwidth, bytes/second.
    pcie_latency_us : float
        Per-transfer latency, microseconds.
    malloc_overhead_us : float
        Fixed cost of a ``cudaMalloc``.
    """

    name: str = "Tesla V100-SXM2-16GB"
    sm_count: int = 80
    warp_size: int = 32
    max_threads_per_block: int = 1024
    shared_mem_per_block: int = 49152
    l2_cache_bytes: int = 6 * 1024 * 1024
    global_mem_bytes: int = 16 * 1024**3
    global_mem_bandwidth: float = 900.0e9
    global_mem_transaction_bytes: int = 32
    fp32_flops: float = 14.0e12
    fp64_flops: float = 7.0e12
    global_atomic_ns: float = 0.9
    l2_atomic_ns: float = 0.22
    shared_atomic_ns: float = 0.035
    kernel_launch_us: float = 5.0
    pcie_bandwidth: float = 12.0e9
    pcie_latency_us: float = 10.0
    malloc_overhead_us: float = 100.0

    def flops(self, dtype_itemsize):
        """Peak arithmetic throughput for the given floating-point item size.

        ``dtype_itemsize`` is the size in bytes of the *real* scalar type
        (4 for float32/complex64 arithmetic, 8 for float64/complex128).
        """
        return self.fp32_flops if dtype_itemsize <= 4 else self.fp64_flops

    def effective_bandwidth(self, fraction_of_peak=0.8):
        """Sustained bandwidth achievable by a well-tuned streaming kernel."""
        return self.global_mem_bandwidth * fraction_of_peak


#: The Tesla V100 configuration used for every GPU measurement in the paper.
V100_SPEC = DeviceSpec()


@dataclass
class Device:
    """A live simulated device.

    Parameters
    ----------
    spec : DeviceSpec
        Hardware description.
    device_id : int
        CUDA-style ordinal, used by the multi-GPU round-robin assignment.

    Attributes
    ----------
    memory : MemoryPool
        Tracks allocations so benchmarks can report RAM usage (Table I).
    active_contexts : int
        Number of MPI ranks currently sharing this device; the weak-scaling
        model slows kernels down once this exceeds 1 (paper Fig. 9 shows
        "rapid deterioration of weak scaling once each GPU is used by more
        than one rank").
    alive : bool
        ``False`` once a hard fault has killed the device: every stream
        operation and simulated kernel launch then raises
        :class:`~repro.faults.DeviceLostError` until :meth:`reset`.
    fault_injector : FaultInjector or None
        Optional :class:`~repro.faults.FaultInjector` consulted on every
        stream operation and kernel launch (``None`` = fault-free).
    """

    spec: DeviceSpec = field(default_factory=lambda: V100_SPEC)
    device_id: int = 0
    active_contexts: int = 0

    def __post_init__(self):
        # Imported here to avoid a circular import at module load.
        from .memory import MemoryPool

        self.memory = MemoryPool(capacity_bytes=self.spec.global_mem_bytes)
        self.streams = []
        self.engine_frontier = {engine: 0.0 for engine in ENGINES}
        self.busy_seconds = {engine: 0.0 for engine in ENGINES}
        self.alive = True
        self.fault_injector = None

    # -- stream timeline (service-layer h2d/exec/d2h overlap model) ---------
    def create_stream(self):
        """Create a new :class:`Stream` on this device."""
        stream = Stream(self, stream_id=len(self.streams))
        self.streams.append(stream)
        return stream

    def timeline_makespan(self):
        """Instant at which every queued operation on every engine is done."""
        frontiers = list(self.engine_frontier.values())
        frontiers += [s.ready_at for s in self.streams]
        return max(frontiers, default=0.0)

    def utilization(self, engine="exec"):
        """Fraction of the timeline makespan the given engine was busy."""
        makespan = self.timeline_makespan()
        if makespan <= 0.0:
            return 0.0
        return self.busy_seconds[engine] / makespan

    def reset_timeline(self):
        """Forget all queued stream work (streams survive, rewound to t=0)."""
        self.engine_frontier = {engine: 0.0 for engine in ENGINES}
        self.busy_seconds = {engine: 0.0 for engine in ENGINES}
        for stream in self.streams:
            stream.ready_at = 0.0
            stream.ops.clear()

    # -- context management (mirrors pycuda's make_context usage in Sec. V-A) --
    def make_context(self):
        """Register a host process (MPI rank) on this device."""
        self.active_contexts += 1
        return _DeviceContext(self)

    def release_context(self):
        """Release one process's claim on the device."""
        if self.active_contexts <= 0:
            raise RuntimeError("release_context called with no active context")
        self.active_contexts -= 1

    @property
    def contention_factor(self):
        """Kernel slowdown from multiple ranks sharing the device.

        One rank (or zero, for single-process use) runs at full speed.  With
        ``r > 1`` ranks time-slicing the device, each rank's kernels take
        roughly ``r`` times as long (plus a small context-switch overhead),
        which is exactly the behaviour Fig. 9 shows past one rank per GPU.
        """
        r = max(1, self.active_contexts)
        if r == 1:
            return 1.0
        return r * 1.05

    def check_launch(self, name=""):
        """Simulated kernel-launch fault gate (``device_sim`` stage hook).

        Consults the attached fault injector (transient kernel failures,
        injected OOMs, hard death); without one, only refuses launches on a
        dead device.  Raises a :class:`~repro.faults.DeviceFaultError`
        subclass when the launch fails, returns ``None`` otherwise.
        """
        if self.fault_injector is not None:
            self.fault_injector.on_kernel_launch(self, name)
        elif not self.alive:
            from ..faults import DeviceLostError

            raise DeviceLostError(f"device {self.device_id} is lost (hard fault)")

    def reset(self):
        """Free all allocations, forget contexts and rewind the timeline.

        A full reset revives a hard-killed device (the simulator analogue of
        swapping the hardware); :meth:`reset_timeline` does not.  The fault
        injector stays attached -- clear ``fault_injector`` (or
        :meth:`~repro.faults.FaultInjector.reset` it) for a clean schedule.
        """
        from .memory import MemoryPool

        self.memory = MemoryPool(capacity_bytes=self.spec.global_mem_bytes)
        self.active_contexts = 0
        self.streams = []
        self.alive = True
        self.reset_timeline()

    def __repr__(self):  # pragma: no cover - debugging nicety
        return (
            f"Device(id={self.device_id}, spec={self.spec.name!r}, "
            f"allocated={self.memory.allocated_bytes} B, "
            f"contexts={self.active_contexts})"
        )


class _DeviceContext:
    """Context-manager returned by :meth:`Device.make_context`."""

    def __init__(self, device):
        self.device = device

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.pop()
        return False

    def pop(self):
        """Release the context (mirrors ``pycuda`` context ``pop``/``detach``)."""
        if self.device is not None:
            self.device.release_context()
            self.device = None
