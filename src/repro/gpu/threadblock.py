"""Thread-block launch geometry helpers for the simulated device.

These helpers mirror the small amount of launch-configuration arithmetic the
CUDA code performs: how many blocks cover a work list, how much shared memory
a padded bin needs, and whether a configuration is launchable on the device.
They are used by the SM spreader and by tests that pin the paper's Remark 2
(3D double precision exceeds the 49 kB shared-memory budget for w > 8).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "blocks_for_work",
    "padded_bin_shape",
    "padded_bin_shared_bytes",
    "check_shared_memory_fit",
    "LaunchConfigError",
]


class LaunchConfigError(RuntimeError):
    """Raised when a kernel configuration cannot run on the device."""


def blocks_for_work(n_items, threads_per_block):
    """Number of thread blocks needed for ``n_items`` one-thread-per-item work."""
    if n_items < 0:
        raise ValueError("n_items must be nonnegative")
    if threads_per_block <= 0:
        raise ValueError("threads_per_block must be positive")
    return int(max(1, -(-int(n_items) // int(threads_per_block))))


def padded_bin_shape(bin_shape, kernel_width):
    """Shape of the shared-memory padded bin (paper Eq. (13)).

    ``p_i = m_i + 2 * ceil(w / 2)`` in every dimension.
    """
    pad = 2 * int(np.ceil(kernel_width / 2.0))
    return tuple(int(m) + pad for m in bin_shape)


def padded_bin_shared_bytes(bin_shape, kernel_width, complex_itemsize):
    """Shared-memory bytes needed by one subproblem's padded bin copy.

    The paper's constraint (Remark 2) is written for single-precision complex
    (8 bytes): ``8 (m1+w)(m2+w)(m3+w) <= 49000`` -- note it uses ``m_i + w``
    which equals ``m_i + 2 ceil(w/2)`` for even ``w``; we use the padded shape
    exactly.
    """
    shape = padded_bin_shape(bin_shape, kernel_width)
    return int(np.prod(shape)) * int(complex_itemsize)


def check_shared_memory_fit(bin_shape, kernel_width, complex_itemsize, spec):
    """Return the shared bytes needed, raising if it exceeds the device limit."""
    need = padded_bin_shared_bytes(bin_shape, kernel_width, complex_itemsize)
    if need > spec.shared_mem_per_block:
        raise LaunchConfigError(
            f"padded bin of shape {padded_bin_shape(bin_shape, kernel_width)} needs "
            f"{need} B of shared memory but the device allows "
            f"{spec.shared_mem_per_block} B per block; use the GM-sort method "
            f"(paper Remark 2) or a smaller bin"
        )
    return need
