"""Atomic-operation contention model.

Global atomic adds on Volta are resolved by the L2 atomic units.  Their
*aggregate* throughput is high when the target addresses are spread out, but
atomics to the *same* address serialize: the update queue for a hot address
drains one operation at a time.  The paper's "cluster" distribution -- all M
nonuniform points inside an 8h-per-side box -- is designed to expose exactly
this failure mode of input-driven (GM) spreading, and is why CUNFFT is up to
200x slower on clustered type-1 transforms (Sec. IV-C) while the SM method,
whose atomics land in block-local shared memory and whose global write-back
touches each padded-bin cell once, stays fast.

The model here is deliberately simple and monotone:

* the expected *queue depth* on a target address is the number of in-flight
  atomic operations divided by the number of distinct addresses being
  updated;
* each operation pays an extra serialization delay proportional to
  ``queue_depth - 1`` (no penalty when addresses outnumber the in-flight
  operations).

The in-flight window and per-slot delay are device-calibration constants in
:mod:`repro.gpu.costmodel`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "expected_queue_depth",
    "serialization_delay_ns",
    "occupied_cells_estimate",
    "dilated_occupied_cells",
]


def expected_queue_depth(inflight_ops, distinct_addresses):
    """Expected number of concurrent atomics queued on one address.

    Parameters
    ----------
    inflight_ops : float
        Number of atomic operations simultaneously in flight on the device
        (a hardware-ish constant, of order 10^4 on a V100).
    distinct_addresses : float
        Number of distinct memory addresses being targeted by the kernel
        (for spreading: the number of fine-grid cells actually receiving
        writes).

    Returns
    -------
    float
        ``max(1, inflight / distinct)``; 1 means no contention.
    """
    if inflight_ops < 0:
        raise ValueError("inflight_ops must be nonnegative")
    if distinct_addresses <= 0:
        raise ValueError("distinct_addresses must be positive")
    return max(1.0, float(inflight_ops) / float(distinct_addresses))


def serialization_delay_ns(n_ops, queue_depth, per_slot_ns):
    """Total extra nanoseconds caused by atomic serialization.

    Each of the ``n_ops`` operations waits behind ``queue_depth - 1`` earlier
    operations on average, each taking ``per_slot_ns`` to drain.

    Returns 0 when ``queue_depth <= 1``.
    """
    if n_ops < 0:
        raise ValueError("n_ops must be nonnegative")
    if per_slot_ns < 0:
        raise ValueError("per_slot_ns must be nonnegative")
    extra = max(0.0, queue_depth - 1.0)
    return float(n_ops) * extra * per_slot_ns


def dilated_occupied_cells(n_point_cells, kernel_width, ndim, total_cells):
    """Distinct fine-grid cells written by spreading, from the point-cell count.

    ``n_point_cells`` is the number of distinct cells that *contain* at least
    one nonuniform point.  Spreading dilates that set by the kernel width; we
    approximate the dilation by treating the occupied set as a cube of side
    ``u^(1/d)`` and adding ``w`` to the side:

    ``covered = (u^(1/d) + w)^d``,  capped at the total number of grid cells.

    This matches the two regimes that matter for contention:

    * "cluster": u = 64 cells in 2D -> (8 + w)^2 covered cells, a tiny hot
      region that serializes global atomics;
    * "rand": u ~ M cells -> covered ~ M, no contention.
    """
    if n_point_cells < 1:
        return 1.0
    if total_cells <= 0:
        raise ValueError("total_cells must be positive")
    side = float(n_point_cells) ** (1.0 / ndim)
    covered = (side + float(kernel_width)) ** ndim
    return float(min(covered, total_cells))


def occupied_cells_estimate(bin_counts, cells_per_bin, kernel_width, ndim):
    """Estimate of distinct fine-grid cells receiving spread writes.

    Spreading writes to every cell within the kernel half-width of some
    nonuniform point.  We estimate that set from the bin occupancy histogram:
    every *nonempty* bin contributes its own cells plus a kernel-width apron
    (the padded bin), and the result is capped at the number of cells implied
    by the total grid (callers cap separately if they know it).

    Parameters
    ----------
    bin_counts : ndarray
        Histogram of points per bin (any shape; only nonzero entries matter).
    cells_per_bin : float
        Number of fine-grid cells per (unpadded) bin.
    kernel_width : int
        Spreading kernel width ``w``.
    ndim : int
        Dimensionality (2 or 3).

    Returns
    -------
    float
        Estimated number of distinct cells written (>= 1).
    """
    bin_counts = np.asarray(bin_counts)
    nonempty = int(np.count_nonzero(bin_counts))
    if nonempty == 0:
        return 1.0
    # Padded-to-plain volume ratio for a roughly cubic bin of the same volume.
    side = cells_per_bin ** (1.0 / ndim)
    ratio = ((side + kernel_width) / side) ** ndim
    return max(1.0, nonempty * cells_per_bin * ratio)
