"""Cost model: converting kernel profiles into (modelled) seconds.

The model is a small set of additive/overlapping terms with V100-calibrated
constants.  It is intentionally interpretable: every term corresponds to one
of the effects the paper's algorithm design targets, so that the benchmark
*shapes* (method orderings, crossovers, distribution sensitivity) follow from
the algorithmic differences rather than from curve fitting.

Terms for one kernel launch
---------------------------
``launch``      fixed kernel-launch latency.
``compute``     flops / peak-flops of the precision in use.
``stream``      coalesced bytes / sustained DRAM bandwidth.
``gather``      uncoalesced sector ops: each costs one L2 sector access, and
                the missing fraction additionally moves a 64-byte line from
                DRAM (read-for-ownership + write-back).
``atomic``      global atomic sector ops priced like gather ops, *plus* a
                serialization penalty when the expected queue depth on a
                target address exceeds one (see :mod:`repro.gpu.atomics`).
``shared``      shared-memory atomics: cheap per-op cost plus bank-conflict
                style serialization within a thread block.

``compute`` overlaps with the memory terms (kernels are either bandwidth- or
compute-bound), so the kernel time is
``launch + max(compute, stream + gather + atomic_sector) + atomic_serial + shared``.

Calibration constants live in :class:`CostModelConstants`; tests pin the
qualitative behaviours (monotonicity, method orderings) rather than absolute
values.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .atomics import expected_queue_depth, serialization_delay_ns
from .device import V100_SPEC
from .memory import TransferDirection, allocation_time_seconds, transfer_time_seconds

__all__ = ["CostModelConstants", "CostModel", "TimingBreakdown"]


@dataclass(frozen=True)
class CostModelConstants:
    """Calibration constants of the kernel cost model (V100 defaults)."""

    #: Sustained fraction of peak DRAM bandwidth for streaming access.
    stream_efficiency: float = 0.85
    #: Cost of one 32-byte L2 sector operation (uncoalesced access), ns.
    l2_sector_ns: float = 0.20
    #: Extra DRAM bytes moved per L2-missing sector op (fetch + eviction).
    dram_bytes_per_miss: float = 64.0
    #: Number of atomic operations simultaneously in flight on the device.
    inflight_atomics: float = 8192.0
    #: Serialization delay per queued-behind atomic op, ns.
    atomic_serial_ns: float = 0.010
    #: Cost of one shared-memory atomic op, ns (per thread, amortized).
    shared_atomic_ns: float = 0.015
    #: Serialization delay per queued shared-memory atomic, ns.
    shared_serial_ns: float = 0.008
    #: In-flight shared atomics per block (roughly the active warps * lanes).
    inflight_shared_atomics: float = 256.0
    #: Achievable fraction of peak FLOP/s for spreading-style kernels.
    compute_efficiency: float = 0.5
    #: Fixed cuFFT plan-creation cost the first time a plan is built, seconds
    #: (the paper measures 0.1-0.2 s and excludes it with a dummy call).
    cufft_startup_s: float = 0.15


@dataclass
class TimingBreakdown:
    """Per-term timing of one kernel (seconds), plus the total."""

    name: str
    launch: float = 0.0
    compute: float = 0.0
    stream: float = 0.0
    gather: float = 0.0
    atomic: float = 0.0
    atomic_serial: float = 0.0
    shared: float = 0.0

    @property
    def total(self):
        memory = self.stream + self.gather + self.atomic
        return (
            self.launch
            + max(self.compute, memory)
            + self.atomic_serial
            + self.shared
        )


class CostModel:
    """Converts :class:`~repro.gpu.profiler.KernelProfile` objects to seconds.

    Parameters
    ----------
    spec : DeviceSpec, optional
        Device being modelled (defaults to the paper's V100).
    constants : CostModelConstants, optional
        Calibration constants.
    precision_itemsize : int, optional
        Size in bytes of the real scalar type (4 = single, 8 = double); used
        to pick the FLOP rate.  Double-precision kernels also move twice the
        bytes, but that is already reflected in the profiles' byte counts.
    """

    def __init__(self, spec=None, constants=None, precision_itemsize=4):
        self.spec = spec if spec is not None else V100_SPEC
        self.constants = constants if constants is not None else CostModelConstants()
        if precision_itemsize not in (4, 8):
            raise ValueError(
                f"precision_itemsize must be 4 or 8, got {precision_itemsize}"
            )
        self.precision_itemsize = precision_itemsize

    def with_constants(self, **overrides):
        """Return a copy of the model with some calibration constants replaced."""
        return CostModel(
            spec=self.spec,
            constants=replace(self.constants, **overrides),
            precision_itemsize=self.precision_itemsize,
        )

    # ------------------------------------------------------------------ #
    # single kernel
    # ------------------------------------------------------------------ #
    def kernel_breakdown(self, profile):
        """Return a :class:`TimingBreakdown` for one kernel profile."""
        c = self.constants
        spec = self.spec

        launch = spec.kernel_launch_us * 1e-6

        flop_rate = spec.flops(self.precision_itemsize) * c.compute_efficiency
        compute = profile.flops / flop_rate if profile.flops else 0.0

        bandwidth = spec.global_mem_bandwidth * c.stream_efficiency
        stream = profile.stream_bytes / bandwidth if profile.stream_bytes else 0.0

        # Uncoalesced non-atomic accesses: per-sector L2 cost + DRAM traffic
        # for the missing fraction.
        gather = profile.gather_sector_ops * c.l2_sector_ns * 1e-9
        gather += (
            profile.gather_sector_ops
            * profile.gather_miss_fraction
            * c.dram_bytes_per_miss
            / bandwidth
        )

        # Global atomics: sector-level cost (+DRAM for misses), then the
        # serialization penalty from contention on hot addresses.
        atomic = profile.global_atomic_sector_ops * c.l2_sector_ns * 1e-9
        atomic += (
            profile.global_atomic_sector_ops
            * profile.global_atomic_miss_fraction
            * c.dram_bytes_per_miss
            / bandwidth
        )
        queue = expected_queue_depth(
            c.inflight_atomics, profile.global_atomic_distinct_addresses
        )
        atomic_serial = (
            serialization_delay_ns(profile.global_atomic_ops, queue, c.atomic_serial_ns)
            * 1e-9
        )

        # Shared-memory atomics: cheap per-op cost + intra-block serialization.
        shared = profile.shared_atomic_ops * c.shared_atomic_ns * 1e-9
        shared_queue = expected_queue_depth(
            min(c.inflight_shared_atomics, profile.block_threads),
            profile.shared_atomic_distinct_addresses,
        )
        shared += (
            serialization_delay_ns(profile.shared_atomic_ops, shared_queue, c.shared_serial_ns)
            * 1e-9
        )

        return TimingBreakdown(
            name=profile.name,
            launch=launch,
            compute=compute,
            stream=stream,
            gather=gather,
            atomic=atomic,
            atomic_serial=atomic_serial,
            shared=shared,
        )

    def kernel_time(self, profile, contention_factor=1.0):
        """Modelled wall-clock seconds for one kernel launch."""
        if contention_factor < 1.0:
            raise ValueError("contention_factor must be >= 1")
        return self.kernel_breakdown(profile).total * contention_factor

    # ------------------------------------------------------------------ #
    # pipelines
    # ------------------------------------------------------------------ #
    def transfer_time(self, record):
        """Seconds for one :class:`~repro.gpu.profiler.TransferRecord`."""
        if record.kind == "alloc":
            return allocation_time_seconds(record.nbytes, self.spec)
        direction = (
            TransferDirection.HOST_TO_DEVICE
            if record.kind == "h2d"
            else TransferDirection.DEVICE_TO_HOST
        )
        return transfer_time_seconds(record.nbytes, self.spec, direction)

    def pipeline_times(self, pipeline, contention_factor=1.0):
        """Return the paper's three timings for a pipeline profile.

        Returns
        -------
        dict with keys ``"exec"``, ``"setup"``, ``"total"``, ``"mem"``,
        ``"total+mem"``, all in seconds.
        """
        exec_t = sum(
            self.kernel_time(k, contention_factor) for k in pipeline.exec_kernels()
        )
        setup_t = sum(
            self.kernel_time(k, contention_factor) for k in pipeline.setup_kernels()
        )
        mem_t = sum(self.transfer_time(t) for t in pipeline.transfers)
        total = exec_t + setup_t
        return {
            "exec": exec_t,
            "setup": setup_t,
            "total": total,
            "mem": mem_t,
            "total+mem": total + mem_t,
        }

    def breakdown_table(self, pipeline, contention_factor=1.0):
        """List of (phase, TimingBreakdown) rows for diagnostic printing."""
        rows = []
        for phase, k in pipeline.kernels:
            b = self.kernel_breakdown(k)
            if contention_factor != 1.0:
                b = TimingBreakdown(
                    name=b.name,
                    launch=b.launch * contention_factor,
                    compute=b.compute * contention_factor,
                    stream=b.stream * contention_factor,
                    gather=b.gather * contention_factor,
                    atomic=b.atomic * contention_factor,
                    atomic_serial=b.atomic_serial * contention_factor,
                    shared=b.shared * contention_factor,
                )
            rows.append((phase, b))
        return rows
