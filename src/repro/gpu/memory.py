"""Device memory: buffers, allocation tracking and host<->device transfers.

The paper reports three timings ("exec", "total", "total+mem") and a GPU RAM
column in Table I.  To reproduce those we track every simulated device
allocation in a :class:`MemoryPool` and model transfer/allocation costs with
the PCIe parameters of the :class:`~repro.gpu.device.DeviceSpec`.

A :class:`DeviceBuffer` simply wraps a NumPy array (the "device" data lives in
host memory -- numerics are exact) together with its accounting record.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["TransferDirection", "DeviceBuffer", "MemoryPool", "OutOfDeviceMemory"]


class OutOfDeviceMemory(MemoryError):
    """Raised when a simulated allocation exceeds the device capacity."""


class TransferDirection(enum.Enum):
    """Direction of a host<->device copy."""

    HOST_TO_DEVICE = "h2d"
    DEVICE_TO_HOST = "d2h"
    DEVICE_TO_DEVICE = "d2d"


@dataclass
class DeviceBuffer:
    """A simulated device allocation wrapping a NumPy array.

    Attributes
    ----------
    array : numpy.ndarray
        The underlying data.  Because the simulation computes real numerics,
        "device" arrays are ordinary NumPy arrays; only the accounting
        distinguishes host from device residence.
    pool : MemoryPool
        The owning pool (used by :meth:`free`).
    label : str
        Human-readable tag ("fine grid", "sort index", ...) used by RAM
        breakdown reports.
    """

    array: np.ndarray
    pool: "MemoryPool"
    label: str = ""
    _freed: bool = field(default=False, repr=False)

    @property
    def nbytes(self):
        return self.array.nbytes

    @property
    def shape(self):
        return self.array.shape

    @property
    def dtype(self):
        return self.array.dtype

    def free(self):
        """Release the allocation back to the pool (idempotent)."""
        if not self._freed:
            self.pool._release(self)
            self._freed = True

    def get(self):
        """Copy device data back to a host array (cuda ``memcpy DtoH``)."""
        return np.array(self.array, copy=True)


@dataclass
class MemoryPool:
    """Tracks simulated device allocations for one device.

    Parameters
    ----------
    capacity_bytes : int
        Device memory capacity; exceeding it raises :class:`OutOfDeviceMemory`.
    """

    capacity_bytes: int
    allocated_bytes: int = 0
    peak_bytes: int = 0
    n_allocations: int = 0
    live_buffers: list = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # allocation
    # ------------------------------------------------------------------ #
    def allocate(self, shape, dtype, label=""):
        """Allocate a zero-initialized device buffer.

        Mirrors ``cudaMalloc`` + ``cudaMemset``; the returned buffer counts
        toward :attr:`allocated_bytes` and :attr:`peak_bytes` until freed.
        """
        array = np.zeros(shape, dtype=dtype)
        return self._register(array, label)

    def from_host(self, host_array, label=""):
        """Allocate a device buffer holding a copy of ``host_array``."""
        array = np.array(host_array, copy=True)
        return self._register(array, label)

    def adopt(self, array, label=""):
        """Account an existing array as a device buffer without copying it.

        The zero-copy registration used by :class:`repro.core.workspace.
        Workspace` to take ownership of stage outputs (e.g. the FFT result
        standing in for the cuFFT workspace buffer): capacity checking and
        accounting behave exactly like :meth:`allocate`, but the array is
        adopted as-is.
        """
        return self._register(np.asarray(array), label)

    def _register(self, array, label):
        nbytes = array.nbytes
        if self.allocated_bytes + nbytes > self.capacity_bytes:
            raise OutOfDeviceMemory(
                f"allocation of {nbytes} B would exceed device capacity "
                f"({self.allocated_bytes} B already in use, "
                f"{self.capacity_bytes} B total)"
            )
        buf = DeviceBuffer(array=array, pool=self, label=label)
        self.allocated_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.allocated_bytes)
        self.n_allocations += 1
        self.live_buffers.append(buf)
        return buf

    def _release(self, buf):
        self.allocated_bytes -= buf.nbytes
        try:
            self.live_buffers.remove(buf)
        except ValueError:  # pragma: no cover - double free is guarded upstream
            pass

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    @property
    def allocated_mb(self):
        """Currently allocated device memory in MB (``nvidia-smi`` style)."""
        return self.allocated_bytes / (1024.0 * 1024.0)

    @property
    def peak_mb(self):
        """Peak allocated device memory in MB."""
        return self.peak_bytes / (1024.0 * 1024.0)

    def breakdown(self):
        """Dict of label -> live bytes, for RAM-usage tables."""
        out = {}
        for buf in self.live_buffers:
            out[buf.label] = out.get(buf.label, 0) + buf.nbytes
        return out


# ---------------------------------------------------------------------- #
# transfer / allocation cost helpers
# ---------------------------------------------------------------------- #
def transfer_time_seconds(nbytes, spec, direction=TransferDirection.HOST_TO_DEVICE):
    """Time to move ``nbytes`` across PCIe (either direction).

    Device-to-device copies run at the device's effective DRAM bandwidth
    instead of the PCIe link.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be nonnegative")
    if direction is TransferDirection.DEVICE_TO_DEVICE:
        bandwidth = spec.effective_bandwidth()
    else:
        bandwidth = spec.pcie_bandwidth
    return spec.pcie_latency_us * 1e-6 + nbytes / bandwidth


def allocation_time_seconds(nbytes, spec):
    """Time for a ``cudaMalloc`` of ``nbytes`` (fixed cost + touch cost)."""
    if nbytes < 0:
        raise ValueError("nbytes must be nonnegative")
    return spec.malloc_overhead_us * 1e-6 + nbytes / spec.effective_bandwidth()
