"""cuFFT-like FFT execution on the simulated device.

The NUFFT pipelines use a plain d-dimensional (inverse) FFT of the fine grid
(paper Step 2).  Numerically we delegate to ``numpy.fft`` (pocketfft), which
is exact for our purposes; the *cost* is modelled the way cuFFT behaves on a
V100:

* an arithmetic term ``~5 N log2 N`` flops for a size-``N`` complex
  transform,
* a memory term of a few full passes over the data at streaming bandwidth
  (large multi-dimensional FFTs on GPUs are bandwidth bound),
* a one-time plan-creation cost of ~0.15 s, which the paper explicitly
  excludes by issuing a dummy ``cufftPlan1d`` call -- we expose the same
  switch via ``include_startup``.
"""

from __future__ import annotations

import numpy as np

from .profiler import KernelProfile

__all__ = ["DeviceFFT", "fft_flops", "fft_kernel_profile"]

#: Number of effective full passes over the data a multi-dimensional
#: out-of-place cuFFT performs (read + write per dimension pass, fused).
_FFT_MEMORY_PASSES = 4.0


def fft_flops(shape):
    """Approximate flop count of a complex FFT of the given shape (5 N log2 N)."""
    n_total = int(np.prod(shape))
    if n_total <= 0:
        raise ValueError(f"invalid FFT shape {shape!r}")
    return 5.0 * n_total * max(1.0, np.log2(n_total))


def fft_kernel_profile(shape, itemsize_complex, name="cufft"):
    """Kernel profile of one (forward or inverse) FFT execution."""
    n_total = int(np.prod(shape))
    return KernelProfile(
        name=name,
        grid_blocks=max(1.0, n_total / 256.0),
        block_threads=256.0,
        flops=fft_flops(shape),
        stream_bytes=_FFT_MEMORY_PASSES * n_total * itemsize_complex,
    )


class DeviceFFT:
    """Executes FFTs numerically and records their cost profile.

    Parameters
    ----------
    pipeline : PipelineProfile or None
        If given, every transform appends its kernel profile there.
    warm : bool
        Whether the cuFFT "plan" has already been created (startup cost paid).
        The benchmark harness creates plans warm, matching the paper's dummy
        ``cufftPlan1d`` call.
    """

    def __init__(self, pipeline=None, warm=True):
        self.pipeline = pipeline
        self.warm = warm
        self.startup_pending = not warm

    def _record(self, shape, dtype, name, count=1):
        if self.pipeline is not None:
            profile = fft_kernel_profile(shape, np.dtype(dtype).itemsize, name=name)
            # cuFFT's batch API runs all ``count`` transforms behind a single
            # launch: the work scales with the batch, the launch does not.
            self.pipeline.add_kernel(profile.scaled(count), phase="exec")

    @staticmethod
    def _batch_geometry(grid, axes):
        """Transform shape and batch count for a (possibly batched) FFT."""
        if axes is None:
            return grid.shape, 1
        shape = tuple(grid.shape[a] for a in axes)
        batch = 1
        axes_set = {a % grid.ndim for a in axes}
        for a in range(grid.ndim):
            if a not in axes_set:
                batch *= grid.shape[a]
        return shape, batch

    def forward(self, grid, axes=None):
        """Forward FFT of a complex fine grid (paper Eq. (9)).

        Note the sign convention: the paper's type-1 step 2 uses
        ``exp(-2 pi i l k / n)`` which matches ``numpy.fft.fftn``.

        ``axes`` restricts the transform to those axes (cuFFT's batched
        execution over a leading ``n_trans`` axis); one *fused* kernel
        profile is recorded carrying the whole batch's work behind a single
        launch, as cuFFT's batch API behaves.
        """
        grid = np.asarray(grid)
        if not np.iscomplexobj(grid):
            raise TypeError("FFT input must be complex")
        shape, batch = self._batch_geometry(grid, axes)
        self._record(shape, grid.dtype, "cufft_forward", count=batch)
        self.startup_pending = False
        return np.fft.fftn(grid, axes=axes).astype(grid.dtype, copy=False)

    def inverse(self, grid, axes=None):
        """Unnormalized inverse FFT (paper Eq. (12)): plain conjugate-sign sum.

        cuFFT's inverse is unnormalized (no 1/N factor), and the type-2
        algorithm wants exactly that, so we multiply numpy's normalized
        ``ifftn`` back by N (the size of the transformed axes only, for
        batched transforms).
        """
        grid = np.asarray(grid)
        if not np.iscomplexobj(grid):
            raise TypeError("FFT input must be complex")
        shape, batch = self._batch_geometry(grid, axes)
        self._record(shape, grid.dtype, "cufft_inverse", count=batch)
        self.startup_pending = False
        n_total = int(np.prod(shape))
        return (np.fft.ifftn(grid, axes=axes) * n_total).astype(grid.dtype, copy=False)
