"""Simulated CUDA GPU substrate.

The paper's library runs CUDA kernels on an NVIDIA Tesla V100.  This
environment has no GPU, so -- per the substitution policy in ``DESIGN.md`` --
this subpackage provides a *simulated device*: the numerical work is done with
vectorized NumPy, while the performance-relevant behaviour of the hardware
(global-memory transactions and coalescing, L2 caching, atomic-operation
serialization, the 48 kB shared-memory-per-block limit, host<->device transfer
over PCIe, kernel-launch overhead, and multi-rank contention for one device)
is modelled explicitly and converted to nanoseconds by a calibrated cost
model.

The point of the model is to preserve the *shape* of the paper's results:
which spreading method wins, where the crossovers fall as grid size, accuracy
and point clustering change, and how the full pipelines compare across
libraries.  Absolute times are indicative only.

Public entry points
-------------------
* :class:`repro.gpu.device.DeviceSpec` / :class:`repro.gpu.device.Device` --
  hardware description and a device with allocation tracking.
* :class:`repro.gpu.profiler.KernelProfile` -- operation counts for one kernel
  launch.
* :class:`repro.gpu.costmodel.CostModel` -- converts profiles to seconds.
* :mod:`repro.gpu.transactions`, :mod:`repro.gpu.atomics` -- the memory and
  atomic models used by the spreading/interpolation cost estimators.
* :mod:`repro.gpu.fft` -- cuFFT-like wrapper over ``numpy.fft`` with cost
  accounting.
"""

from .device import DeviceSpec, Device, V100_SPEC, Stream, Event
from .memory import DeviceBuffer, MemoryPool, TransferDirection
from .profiler import KernelProfile, PipelineProfile
from .costmodel import CostModel
from .fft import DeviceFFT

__all__ = [
    "DeviceSpec",
    "Device",
    "V100_SPEC",
    "Stream",
    "Event",
    "DeviceBuffer",
    "MemoryPool",
    "TransferDirection",
    "KernelProfile",
    "PipelineProfile",
    "CostModel",
    "DeviceFFT",
]
