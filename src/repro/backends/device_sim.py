"""Device-sim backend: real numerics plus simulated-GPU kernel profiles.

Numerically this backend delegates to the ``cached`` fast path (or to the
``reference`` per-transform loop when the plan carries no stencil cache, i.e.
``cache_stencils=False``), then attaches the per-stage
:class:`~repro.gpu.profiler.KernelProfile` records the paper's cost model
prices: method-specific spread/interp kernels, the cuFFT launches (recorded by
:class:`~repro.gpu.fft.DeviceFFT`), and the deconvolution passes.  Plans on
this backend therefore report the paper's three timings (``exec``, ``total``,
``total+mem``) after every execute -- it is the default backend.

The module-level :func:`spread_stage_profiles` / :func:`interp_stage_profiles`
helpers are the single dispatch point from a spreading *method* to its kernel
profiles; :mod:`repro.metrics.modeling` builds its paper-scale estimates
through the same functions, so modelled benchmarks and executed plans can
never disagree about what a method costs.
"""

from __future__ import annotations

from ..core.deconvolve import deconvolve_kernel_profile
from ..core.interp import interp_kernel_profiles
from ..core.options import SpreadMethod
from ..core.spread import spread_kernel_profiles, spread_sm_kernel_profiles
from .base import ExecutionBackend, get_backend

__all__ = ["DeviceSimBackend", "spread_stage_profiles", "interp_stage_profiles"]


def spread_stage_profiles(method, sort, kernel, precision, threads_per_block=128,
                          spec=None, subproblems=None):
    """Kernel profiles of one spreading pass for the given method.

    ``sort`` may be a :class:`~repro.core.binsort.BinSort` or a
    :class:`~repro.core.binsort.SpreadStats` (the paper-scale modelling path);
    ``subproblems`` supplies the SM decomposition when the caller already has
    one (a Plan, or an estimated count from a scaled histogram).
    """
    method = SpreadMethod.parse(method)
    if method is SpreadMethod.SM and subproblems is not None:
        return spread_sm_kernel_profiles(
            sort, kernel, precision, subproblems, threads_per_block, spec
        )
    return spread_kernel_profiles(
        method, sort, kernel, precision, threads_per_block, spec
    )


def interp_stage_profiles(method, sort, kernel, precision, threads_per_block=128,
                          spec=None):
    """Kernel profiles of one interpolation pass (SM falls back to GM-sort)."""
    return interp_kernel_profiles(
        method, sort, kernel, precision, threads_per_block, spec
    )


class DeviceSimBackend(ExecutionBackend):
    """Profiled execution on the simulated device; see module docstring."""

    name = "device_sim"
    records_profiles = True

    @staticmethod
    def _numerics(plan):
        """Numeric engine: cached fast path when a stencil cache exists."""
        return get_backend("cached" if plan._stencil is not None else "reference")

    @staticmethod
    def _add_fused_stage(plan, pipeline, profiles, n_trans):
        """Record one fused launch per stage kernel.

        The batched engine processes all ``n_trans`` transforms of a stage in
        a single pass, so the *work* scales with the batch but the launch
        does not -- matching cuFINUFFT's batched kernels.  (``n_trans=1``
        records the profiles unchanged.)

        Each launch first passes the device's fault gate
        (:meth:`~repro.gpu.device.Device.check_launch`): an attached
        :class:`~repro.faults.FaultInjector` may raise a transient kernel
        failure, an injected OOM or a device-lost error here -- the stage
        boundary where a real ``cudaGetLastError`` would report them.
        """
        for prof in profiles:
            plan.device.check_launch(prof.name)
            pipeline.add_kernel(prof.scaled(n_trans), phase="exec")

    # ------------------------------------------------------------------ #
    def spread(self, plan, strengths, pipeline, out=None):
        fine = self._numerics(plan).spread(plan, strengths, pipeline, out=out)
        subproblems = (
            plan._ensure_subproblems() if plan.method is SpreadMethod.SM else None
        )
        profiles = spread_stage_profiles(
            plan.method, plan._sort, plan.kernel, plan.precision,
            plan.opts.threads_per_block, plan.device.spec, subproblems=subproblems,
        )
        self._add_fused_stage(plan, pipeline, profiles, strengths.shape[0])
        return fine

    def fft_forward(self, plan, fine, pipeline):
        # DeviceFFT records one fused batched-cufft profile by itself; the
        # launch still passes the device's fault gate like every stage.
        plan.device.check_launch("cufft_forward")
        return self._numerics(plan).fft_forward(plan, fine, pipeline)

    def fft_inverse(self, plan, fine, pipeline):
        plan.device.check_launch("cufft_inverse")
        return self._numerics(plan).fft_inverse(plan, fine, pipeline)

    def deconvolve(self, plan, fine_hat, pipeline, out=None):
        modes = self._numerics(plan).deconvolve(plan, fine_hat, pipeline, out=out)
        profile = deconvolve_kernel_profile(
            plan.n_modes, plan.precision.complex_itemsize
        )
        self._add_fused_stage(plan, pipeline, [profile], fine_hat.shape[0])
        return modes

    def precorrect(self, plan, modes, pipeline, out=None):
        fine = self._numerics(plan).precorrect(plan, modes, pipeline, out=out)
        profile = deconvolve_kernel_profile(
            plan.n_modes, plan.precision.complex_itemsize, name="precorrect"
        )
        self._add_fused_stage(plan, pipeline, [profile], modes.shape[0])
        return fine

    def interp(self, plan, fine, pipeline, out=None):
        result = self._numerics(plan).interp(plan, fine, pipeline, out=out)
        profiles = interp_stage_profiles(
            plan.interp_method, plan._sort, plan.kernel, plan.precision,
            plan.opts.threads_per_block, plan.device.spec,
        )
        self._add_fused_stage(plan, pipeline, profiles, fine.shape[0])
        return result
