"""Pluggable execution backends for the transform stage pipeline.

See :mod:`repro.backends.base` for the protocol and registry.  The three
built-in backends (``reference``, ``cached``, ``device_sim``) are registered
on import; select one per plan via ``Opts.backend`` / the ``backend=`` keyword
of :class:`repro.core.plan.Plan`.
"""

from .base import (
    ExecutionBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .cached import CachedBackend
from .device_sim import DeviceSimBackend
from .reference import ReferenceBackend

__all__ = [
    "ExecutionBackend",
    "ReferenceBackend",
    "CachedBackend",
    "DeviceSimBackend",
    "register_backend",
    "get_backend",
    "available_backends",
]

register_backend(ReferenceBackend.name, ReferenceBackend)
register_backend(CachedBackend.name, CachedBackend)
register_backend(DeviceSimBackend.name, DeviceSimBackend)
