"""Reference backend: exact dense numpy numerics, one transform at a time.

This is the seed implementation's execution strategy (the ``cache_stencils=
False, kernel_eval="exact"`` path of earlier revisions): every stage loops
over the ``n_trans`` transforms, kernels are evaluated on the fly through the
exact ``exp(beta*(sqrt(1-z^2)-1))`` form (no plan-level stencil cache), and no
simulated-GPU profiles are recorded.  It is the ground truth the ``cached``
and ``device_sim`` backends are validated against, and the baseline the
throughput benchmark measures speedups from.
"""

from __future__ import annotations

import numpy as np

from ..core.interp import interpolate
from ..core.options import SpreadMethod
from ..core.spread import spread_gm, spread_gm_sort, spread_sm
from .base import ExecutionBackend

__all__ = ["ReferenceBackend"]


class ReferenceBackend(ExecutionBackend):
    """Per-transform exact numerics; see module docstring."""

    name = "reference"
    records_profiles = False

    def wants_stencil_cache(self, opts):
        return False

    # ------------------------------------------------------------------ #
    def _spread_one(self, plan, strengths):
        cplx = plan.precision.complex_dtype
        if plan.method is SpreadMethod.GM:
            return spread_gm(plan.fine_shape, plan._grid_coords, strengths,
                             plan.kernel, cplx)
        if plan.method is SpreadMethod.GM_SORT:
            return spread_gm_sort(plan.fine_shape, plan._grid_coords, strengths,
                                  plan.kernel, plan._sort, cplx)
        return spread_sm(plan.fine_shape, plan._grid_coords, strengths,
                         plan.kernel, plan._sort, plan._ensure_subproblems(), cplx)

    def spread(self, plan, strengths, pipeline):
        return np.stack([
            self._spread_one(plan, strengths[t]) for t in range(strengths.shape[0])
        ])

    def fft_forward(self, plan, fine, pipeline):
        return np.stack([
            plan._fft.forward(fine[t].astype(np.complex128, copy=False))
            for t in range(fine.shape[0])
        ])

    def fft_inverse(self, plan, fine, pipeline):
        return np.stack([
            plan._fft.inverse(fine[t].astype(np.complex128, copy=False))
            for t in range(fine.shape[0])
        ])

    def deconvolve(self, plan, fine_hat, pipeline):
        cplx = plan.precision.complex_dtype
        return np.stack([
            plan.correction.truncate_and_scale(fine_hat[t], dtype=cplx)
            for t in range(fine_hat.shape[0])
        ])

    def precorrect(self, plan, modes, pipeline):
        return np.stack([
            plan.correction.pad_and_scale(modes[t], dtype=np.complex128)
            for t in range(modes.shape[0])
        ])

    def interp(self, plan, fine, pipeline):
        cplx = plan.precision.complex_dtype
        method = plan.interp_method
        return np.stack([
            interpolate(fine[t], plan._grid_coords, plan.kernel, method,
                        plan._sort, cplx)
            for t in range(fine.shape[0])
        ])
