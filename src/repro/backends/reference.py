"""Reference backend: exact dense numpy numerics, one transform at a time.

This is the seed implementation's execution strategy (the ``cache_stencils=
False, kernel_eval="exact"`` path of earlier revisions): every stage loops
over the ``n_trans`` transforms, kernels are evaluated on the fly through the
exact ``exp(beta*(sqrt(1-z^2)-1))`` form (no plan-level stencil cache), and no
simulated-GPU profiles are recorded.  It is the ground truth the ``cached``
and ``device_sim`` backends are validated against, and the baseline the
throughput benchmark measures speedups from.
"""

from __future__ import annotations

import numpy as np

from ..core.interp import interpolate
from ..core.options import SpreadMethod
from ..core.spread import spread_gm, spread_gm_sort, spread_sm
from .base import ExecutionBackend

__all__ = ["ReferenceBackend"]


class ReferenceBackend(ExecutionBackend):
    """Per-transform exact numerics; see module docstring."""

    name = "reference"
    records_profiles = False

    def wants_stencil_cache(self, opts):
        return False

    # ------------------------------------------------------------------ #
    def _spread_one(self, plan, strengths):
        cplx = plan.precision.complex_dtype
        if plan.method is SpreadMethod.GM:
            return spread_gm(plan.fine_shape, plan._grid_coords, strengths,
                             plan.kernel, cplx)
        if plan.method is SpreadMethod.GM_SORT:
            return spread_gm_sort(plan.fine_shape, plan._grid_coords, strengths,
                                  plan.kernel, plan._sort, cplx)
        return spread_sm(plan.fine_shape, plan._grid_coords, strengths,
                         plan.kernel, plan._sort, plan._ensure_subproblems(), cplx)

    @staticmethod
    def _stacked(parts, out):
        """Stack per-transform results, landing in ``out`` when provided.

        The reference loop keeps its double-precision internal math; honouring
        ``out=`` only changes where the stacked block is stored (the copy into
        single-precision storage is the ground-truth rounding step).
        """
        if out is not None:
            for t, part in enumerate(parts):
                out[t] = part
            return out
        return np.stack(parts)

    def spread(self, plan, strengths, pipeline, out=None):
        return self._stacked(
            [self._spread_one(plan, strengths[t])
             for t in range(strengths.shape[0])],
            out,
        )

    def fft_forward(self, plan, fine, pipeline):
        return np.stack([
            plan._fft.forward(fine[t].astype(np.complex128, copy=False))
            for t in range(fine.shape[0])
        ])

    def fft_inverse(self, plan, fine, pipeline):
        return np.stack([
            plan._fft.inverse(fine[t].astype(np.complex128, copy=False))
            for t in range(fine.shape[0])
        ])

    def deconvolve(self, plan, fine_hat, pipeline, out=None):
        cplx = plan.precision.complex_dtype
        return self._stacked(
            [plan.correction.truncate_and_scale(fine_hat[t], dtype=cplx)
             for t in range(fine_hat.shape[0])],
            out,
        )

    def precorrect(self, plan, modes, pipeline, out=None):
        return self._stacked(
            [plan.correction.pad_and_scale(modes[t], dtype=np.complex128)
             for t in range(modes.shape[0])],
            out,
        )

    def interp(self, plan, fine, pipeline, out=None):
        cplx = plan.precision.complex_dtype
        method = plan.interp_method
        return self._stacked(
            [interpolate(fine[t], plan._grid_coords, plan.kernel, method,
                         plan._sort, cplx)
             for t in range(fine.shape[0])],
            out,
        )
