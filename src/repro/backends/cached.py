"""Cached backend: fused batched numerics over the plan-level stencil cache.

The fast path introduced by the batched execution engine: ``set_pts``
precomputes the per-point kernel stencils (and, within budget, the CSR sparse
spread/interp operator), and every stage then processes the whole ``n_trans``
block in one fused pass -- a sparse mat-mat (or fused ``bincount``) for
spreading, a batched multi-axis FFT, broadcast correction factors, and the
transposed sparse gather for interpolation.  No simulated-GPU profiles are
recorded; this backend is pure throughput.
"""

from __future__ import annotations

from ..core.interp import interp_cached, interpolate
from ..core.options import SpreadMethod
from ..core.spread import spread_cached, spread_gm, spread_gm_sort, spread_sm
from .base import ExecutionBackend

__all__ = ["CachedBackend"]


class CachedBackend(ExecutionBackend):
    """Fused batched numerics over the stencil cache; see module docstring."""

    name = "cached"
    records_profiles = False

    def wants_stencil_cache(self, opts):
        # The cache *is* this backend; build it even when the generic
        # ``cache_stencils`` switch was turned off.
        return True

    # ------------------------------------------------------------------ #
    def spread(self, plan, strengths, pipeline, out=None):
        cache = plan._stencil
        cplx = plan.precision.complex_dtype
        if cache is not None and cache.interp_matrix is not None:
            return spread_cached(plan.fine_shape, strengths, cache, cplx, out=out)
        if plan.method is SpreadMethod.GM:
            return spread_gm(plan.fine_shape, plan._grid_coords, strengths,
                             plan.kernel, cplx, cache=cache, out=out)
        if plan.method is SpreadMethod.GM_SORT:
            return spread_gm_sort(plan.fine_shape, plan._grid_coords, strengths,
                                  plan.kernel, plan._sort, cplx, cache=cache,
                                  out=out)
        return spread_sm(plan.fine_shape, plan._grid_coords, strengths,
                         plan.kernel, plan._sort, plan._ensure_subproblems(),
                         cplx, cache=cache, out=out)

    def fft_forward(self, plan, fine, pipeline):
        # Native precision end to end: pocketfft transforms complex64 blocks
        # without the historical complex128 round-trip (two full-grid copies).
        axes = tuple(range(1, plan.ndim + 1))
        return plan._fft.forward(fine, axes=axes)

    def fft_inverse(self, plan, fine, pipeline):
        axes = tuple(range(1, plan.ndim + 1))
        return plan._fft.inverse(fine, axes=axes)

    def deconvolve(self, plan, fine_hat, pipeline, out=None):
        return plan.correction.truncate_and_scale(
            fine_hat, dtype=plan.precision.complex_dtype, out=out
        )

    def precorrect(self, plan, modes, pipeline, out=None):
        return plan.correction.pad_and_scale(
            modes, dtype=plan.precision.complex_dtype, out=out
        )

    def interp(self, plan, fine, pipeline, out=None):
        cache = plan._stencil
        cplx = plan.precision.complex_dtype
        if cache is not None and cache.interp_matrix is not None:
            return interp_cached(fine, plan._grid_coords, cache, cplx, out=out)
        return interpolate(fine, plan._grid_coords, plan.kernel,
                           plan.interp_method, plan._sort, cplx, cache=cache,
                           out=out)
