"""Execution-backend protocol and registry.

A :class:`repro.core.plan.Plan` no longer hard-wires how its pipeline stages
run: ``execute`` is an explicit stage pipeline (spread -> FFT -> deconvolve
for type 1, its transpose for type 2, and the type-2∘scale∘type-1 composition
for type 3) where every stage is dispatched through an
:class:`ExecutionBackend`.  Three backends ship with the library:

``reference``
    Exact dense numpy numerics: the seed implementation's per-transform loop
    with on-the-fly (exact) kernel evaluation and no stencil cache.  Slow but
    dependency-free ground truth for the other backends.
``cached``
    The fast path: plan-level stencil cache, fused ``n_trans`` passes and the
    CSR sparse spread/interp operator.  Pure numerics -- no simulated-GPU
    profiling overhead.
``device_sim``
    Wraps the numerics of ``cached`` (or ``reference`` when the stencil cache
    is disabled) and routes every stage through the simulated GPU kernel
    profiles, so the paper's cost-model timings (``exec`` / ``total`` /
    ``total+mem``) stay attached to each execute call.  This is the default.

The registry mirrors :mod:`repro.baselines.registry`: backends are selected
by name (``Opts.backend``) and new ones can be plugged in with
:func:`register_backend` -- the seam later real-GPU or distributed backends
slot into.
"""

from __future__ import annotations

__all__ = [
    "ExecutionBackend",
    "register_backend",
    "get_backend",
    "available_backends",
]


class ExecutionBackend:
    """Protocol for one execution strategy of the transform stages.

    Every stage receives the owning :class:`~repro.core.plan.Plan` (which
    carries the geometry: kernel, fine grid, bin sort, stencil cache,
    correction factors), the batched data block, and the
    :class:`~repro.gpu.profiler.PipelineProfile` of the current execute call
    (ignored by backends that do not record profiles).

    Data contracts (``B = n_trans`` leading axis, always present):

    * ``spread``:      ``(B, M)`` strengths      -> ``(B, *fine_shape)`` grid
    * ``fft_forward``: ``(B, *fine_shape)``      -> same, native precision
    * ``deconvolve``:  ``(B, *fine_shape)`` FFT  -> ``(B, *n_modes)`` modes
    * ``precorrect``:  ``(B, *n_modes)`` modes   -> ``(B, *fine_shape)`` grid
    * ``fft_inverse``: ``(B, *fine_shape)``      -> same, native precision
    * ``interp``:      ``(B, *fine_shape)`` grid -> ``(B, M)`` values

    Every non-FFT stage accepts an optional ``out=`` array of the stage's
    output shape: when given, the stage writes its result into that storage
    and returns it (the zero-copy workspace pipeline -- the plan passes its
    :class:`~repro.core.workspace.Workspace` buffers or the user's ``out=``
    array); when omitted, the stage allocates as before.  The FFT stages are
    inherently out-of-place (pocketfft, like cuFFT's workspace-backed
    transform, produces a new array); the plan re-adopts their results into
    the workspace instead.
    """

    #: Registry name of the backend.
    name = "abstract"
    #: Whether this backend records simulated-GPU kernel profiles into the
    #: execute pipeline (drives ``Plan.timings`` / ``spread_fraction``).
    records_profiles = False

    def wants_stencil_cache(self, opts):
        """Whether ``Plan.set_pts`` should precompute the stencil cache."""
        return bool(opts.cache_stencils)

    # Stage hooks -------------------------------------------------------- #
    def spread(self, plan, strengths, pipeline, out=None):
        raise NotImplementedError

    def fft_forward(self, plan, fine, pipeline):
        raise NotImplementedError

    def fft_inverse(self, plan, fine, pipeline):
        raise NotImplementedError

    def deconvolve(self, plan, fine_hat, pipeline, out=None):
        raise NotImplementedError

    def precorrect(self, plan, modes, pipeline, out=None):
        raise NotImplementedError

    def interp(self, plan, fine, pipeline, out=None):
        raise NotImplementedError


_FACTORIES = {}
_INSTANCES = {}


def register_backend(name, factory):
    """Register an execution backend factory under ``name``.

    ``factory`` is called with no arguments and must return an
    :class:`ExecutionBackend`.  Re-registering a name replaces the previous
    factory (and drops its cached instance), so tests can shadow a backend.
    """
    key = str(name).strip().lower()
    if not key:
        raise ValueError("backend name must be a non-empty string")
    _FACTORIES[key] = factory
    _INSTANCES.pop(key, None)


def available_backends():
    """Names accepted by :func:`get_backend`, in registration order."""
    return list(_FACTORIES.keys())


def get_backend(name):
    """Resolve a backend name to its (shared, stateless) instance."""
    key = str(name).strip().lower()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown execution backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        )
    if key not in _INSTANCES:
        _INSTANCES[key] = _FACTORIES[key]()
    return _INSTANCES[key]
