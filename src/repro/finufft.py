"""Drop-in facade mirroring the upstream ``finufft`` Python interface.

Scripts written against `FINUFFT <https://finufft.readthedocs.io>`_ run
verbatim against the reproduction by changing only the import::

    import repro.finufft as finufft   # instead of: import finufft

    plan = finufft.Plan(1, (64, 64), eps=1e-6)
    plan.setpts(x, y)
    f = plan.execute(c)

The facade translates upstream conventions onto :class:`repro.core.plan.Plan`
without touching the numerics, so results are bit-identical to the native API
at equal settings:

* **Signature and naming** -- guru ``Plan(nufft_type, n_modes_or_dim,
  iflag=None, n_trans=1, eps=None, **kwargs)`` with ``setpts`` /
  ``execute(data, out=None)`` / ``destroy`` methods, and the nine
  ``nufft{1,2,3}d{1,2,3}`` simple calls with upstream argument order and
  ``out=`` support.
* **Sign defaults** -- upstream ``iflag`` defaults to ``+1`` for types 1 and
  3 and ``-1`` for type 2 (the *opposite* of the paper's type-1 convention
  used by the native API, whose type-1 default is ``-1``).
* **Tolerance defaults** -- upstream ``eps`` defaults to ``1e-6`` in single
  precision and ``1e-14`` in double; precision itself comes from ``dtype=``
  (``"complex64"``/``"complex128"``, upstream's plan dtype option).
* **Options mapping** -- upstream opts names (``modeord``, ``spread_sort``,
  ``spread_kerevalmeth``, ``upsampfac``, ``nthreads``, ``debug``, ``fftw``)
  are translated to :class:`~repro.core.options.Opts` fields where they have
  a reproduction equivalent and accepted as no-ops where they only tune the
  CPU library (thread counts, FFTW planner flags, debug printing).

Only ``modeord=0`` (CMCL ordering: modes ascending from ``-N//2``, the
native layout) is supported; ``modeord=1`` (FFT ordering) raises.
"""

from __future__ import annotations

import numpy as np

from .core.options import Opts
from .core.plan import Plan as _NativePlan
from .core import simple as _simple

__all__ = [
    "Plan",
    "nufft1d1", "nufft1d2", "nufft1d3",
    "nufft2d1", "nufft2d2", "nufft2d3",
    "nufft3d1", "nufft3d2", "nufft3d3",
]

#: Upstream eps defaults per precision (finufft's plan defaults).
_DEFAULT_EPS = {"single": 1e-6, "double": 1e-14}

#: Upstream opts accepted and ignored: they tune the CPU library's threading,
#: FFTW planner or logging, none of which exists in the simulation.
_IGNORED_OPTS = frozenset({
    "nthreads", "debug", "spread_debug", "showwarn", "fftw", "spread_thread",
    "maxbatchsize", "spread_nthr_atomic", "spread_max_sp_size", "chkbnds",
})


def _parse_dtype(dtype):
    """Upstream ``dtype=`` plan option -> native precision name."""
    key = np.dtype(dtype if dtype is not None else "complex128")
    if key == np.dtype(np.complex64):
        return "single"
    if key == np.dtype(np.complex128):
        return "double"
    raise TypeError(
        f"dtype must be complex64 or complex128, got {np.dtype(dtype).name}"
    )


def _default_iflag(nufft_type):
    """Upstream sign defaults: +1 for types 1 and 3, -1 for type 2."""
    return -1 if int(nufft_type) == 2 else 1


def _translate_opts(kwargs):
    """Map upstream opts names onto :class:`~repro.core.options.Opts` fields.

    Returns a dict of native ``Opts`` overrides.  Unknown names raise (as the
    upstream binding does), so typos fail loudly instead of silently running
    with defaults.
    """
    native = {}
    for name, value in kwargs.items():
        if name in _IGNORED_OPTS or value is None:
            continue
        if name == "modeord":
            if int(value) != 0:
                raise NotImplementedError(
                    "only modeord=0 (CMCL ordering, modes ascending from "
                    "-N//2) is supported; FFT-style modeord=1 is not"
                )
        elif name == "spread_sort":
            # 0 = never sort, 1 = always, 2 = heuristic (sorts here).
            native["sort_points"] = int(value) != 0
        elif name == "spread_kerevalmeth":
            # 0 = exact exp(sqrt) evaluation, 1 = Horner approximation.
            native["kernel_eval"] = "horner" if int(value) else "exact"
        elif name == "upsampfac":
            native["upsampfac"] = float(value)
        elif name == "spreadinterponly":
            native["spread_only"] = bool(value)
        else:
            raise TypeError(f"unknown finufft option {name!r}")
    return native


class Plan:
    """Guru-interface plan with the upstream ``finufft.Plan`` signature.

    Parameters
    ----------
    nufft_type : int
        1, 2 or 3.
    n_modes_or_dim : int or tuple of int
        Mode counts ``(N1[, N2[, N3]])`` for types 1 and 2; the dimension
        for type 3 (as upstream: a type-3 plan has no uniform grid).
    iflag : int, optional
        Sign of ``i`` in the transform exponent.  Defaults to upstream's
        convention: ``+1`` for types 1 and 3, ``-1`` for type 2.
    n_trans : int
        Number of transforms sharing one point set (vectorized interface).
    eps : float, optional
        Requested tolerance; defaults to upstream's ``1e-6`` (single
        precision) or ``1e-14`` (double).
    dtype : str or numpy dtype
        ``"complex64"`` or ``"complex128"`` (default) -- selects the working
        precision, as upstream's plan ``dtype`` option.
    **kwargs
        Upstream opts names (``modeord``, ``spread_sort``,
        ``spread_kerevalmeth``, ``upsampfac``, ``nthreads``, ``debug``,
        ``fftw``, ...), translated or accepted as documented in the module
        docstring.

    Examples
    --------
    >>> import numpy as np
    >>> import repro.finufft as finufft
    >>> rng = np.random.default_rng(0)
    >>> x = rng.uniform(-np.pi, np.pi, 400)
    >>> c = rng.standard_normal(400) + 1j * rng.standard_normal(400)
    >>> plan = finufft.Plan(1, (48,), eps=1e-6)
    >>> plan.setpts(x)
    >>> plan.execute(c).shape
    (48,)
    """

    def __init__(self, nufft_type, n_modes_or_dim, iflag=None, n_trans=1,
                 eps=None, dtype="complex128", **kwargs):
        precision = _parse_dtype(dtype)
        if eps is None:
            eps = _DEFAULT_EPS[precision]
        if iflag is None:
            iflag = _default_iflag(nufft_type)
        overrides = _translate_opts(kwargs)
        overrides["precision"] = precision
        overrides["isign"] = int(np.sign(int(iflag))) if int(iflag) != 0 else 0
        self._plan = _NativePlan(nufft_type, n_modes_or_dim, n_trans=n_trans,
                                 eps=eps, opts=Opts(**overrides))

    # Upstream-facing attributes ---------------------------------------- #
    @property
    def nufft_type(self):
        """Transform type (1, 2 or 3)."""
        return self._plan.nufft_type

    @property
    def n_trans(self):
        """Number of stacked transforms per execute."""
        return self._plan.n_trans

    @property
    def dtype(self):
        """Complex working dtype of the plan."""
        return np.dtype(self._plan.precision.complex_dtype)

    def setpts(self, x=None, y=None, z=None, s=None, t=None, u=None):
        """Register nonuniform points (and type-3 target frequencies)."""
        self._plan.set_pts(x, y=y, z=z, s=s, t=t, u=u)
        return self

    def execute(self, data, out=None):
        """Run the planned transform; ``out=`` receives the result in place."""
        return self._plan.execute(data, out=out)

    def destroy(self):
        """Free the plan's (simulated) device resources."""
        self._plan.destroy()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.destroy()
        return False


def _simple_kwargs(isign, eps, kwargs):
    """Translate simple-call upstream opts into native wrapper kwargs."""
    native = _translate_opts(kwargs)
    native["isign"] = int(np.sign(int(isign))) if int(isign) != 0 else 0
    return native


def nufft1d1(x, c, n_modes=None, out=None, eps=1e-6, isign=1, **kwargs):
    """1D type-1 simple call with upstream defaults (``isign=+1``).

    ``n_modes`` may be omitted when ``out=`` is given (inferred from its
    shape, as upstream).
    """
    n_modes = _modes_from_out(n_modes, out, 1)
    return _simple.nufft1d1(x, c, n_modes, eps=eps, out=out,
                            **_simple_kwargs(isign, eps, kwargs))


def nufft1d2(x, f, out=None, eps=1e-6, isign=-1, **kwargs):
    """1D type-2 simple call with upstream defaults (``isign=-1``)."""
    return _simple.nufft1d2(x, f, eps=eps, out=out,
                            **_simple_kwargs(isign, eps, kwargs))


def nufft1d3(x, c, s, out=None, eps=1e-6, isign=1, **kwargs):
    """1D type-3 simple call with upstream defaults (``isign=+1``)."""
    return _simple.nufft1d3(x, c, s, eps=eps, out=out,
                            **_simple_kwargs(isign, eps, kwargs))


def nufft2d1(x, y, c, n_modes=None, out=None, eps=1e-6, isign=1, **kwargs):
    """2D type-1 simple call with upstream defaults (``isign=+1``)."""
    n_modes = _modes_from_out(n_modes, out, 2)
    return _simple.nufft2d1(x, y, c, n_modes, eps=eps, out=out,
                            **_simple_kwargs(isign, eps, kwargs))


def nufft2d2(x, y, f, out=None, eps=1e-6, isign=-1, **kwargs):
    """2D type-2 simple call with upstream defaults (``isign=-1``)."""
    return _simple.nufft2d2(x, y, f, eps=eps, out=out,
                            **_simple_kwargs(isign, eps, kwargs))


def nufft2d3(x, y, c, s, t, out=None, eps=1e-6, isign=1, **kwargs):
    """2D type-3 simple call with upstream defaults (``isign=+1``)."""
    return _simple.nufft2d3(x, y, c, s, t, eps=eps, out=out,
                            **_simple_kwargs(isign, eps, kwargs))


def nufft3d1(x, y, z, c, n_modes=None, out=None, eps=1e-6, isign=1, **kwargs):
    """3D type-1 simple call with upstream defaults (``isign=+1``)."""
    n_modes = _modes_from_out(n_modes, out, 3)
    return _simple.nufft3d1(x, y, z, c, n_modes, eps=eps, out=out,
                            **_simple_kwargs(isign, eps, kwargs))


def nufft3d2(x, y, z, f, out=None, eps=1e-6, isign=-1, **kwargs):
    """3D type-2 simple call with upstream defaults (``isign=-1``)."""
    return _simple.nufft3d2(x, y, z, f, eps=eps, out=out,
                            **_simple_kwargs(isign, eps, kwargs))


def nufft3d3(x, y, z, c, s, t, u, out=None, eps=1e-6, isign=1, **kwargs):
    """3D type-3 simple call with upstream defaults (``isign=+1``)."""
    return _simple.nufft3d3(x, y, z, c, s, t, u, eps=eps, out=out,
                            **_simple_kwargs(isign, eps, kwargs))


def _modes_from_out(n_modes, out, ndim):
    """Upstream type-1 convenience: infer ``n_modes`` from ``out``'s shape."""
    if n_modes is not None:
        return n_modes
    if out is None:
        raise ValueError("either n_modes or out= must be provided")
    shape = np.shape(out)
    trailing = shape[len(shape) - ndim:]
    if len(trailing) != ndim:
        raise ValueError(
            f"out has shape {shape}, cannot infer {ndim}-D mode counts"
        )
    return trailing
