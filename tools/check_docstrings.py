#!/usr/bin/env python
"""Docstring-coverage gate for the audited public API.

Walks the ``__all__`` of the audited modules and fails (exit 1) unless every
public symbol carries a substantive docstring -- the post-audit level is
100%, and this gate keeps it there.  For ``repro.core.simple`` (the simple
interfaces) each wrapper must additionally carry a runnable ``Examples``
section, which ``tests/test_docs.py`` executes as doctests.

Run from the repository root:

    PYTHONPATH=src python tools/check_docstrings.py
"""

from __future__ import annotations

import importlib
import inspect
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

#: Audited modules and their per-symbol requirements.
AUDITED = {
    "repro": {"require_examples": False},
    "repro.artifacts": {"require_examples": False},
    "repro.core.env": {"require_examples": False},
    "repro.core.simple": {"require_examples": True},
    "repro.core.workspace": {"require_examples": False},
    "repro.cluster.distributed": {"require_examples": False},
    "repro.cufinufft": {"require_examples": False},
    "repro.finufft": {"require_examples": False},
    "repro.faults": {"require_examples": False},
    "repro.service": {"require_examples": False},
    "repro.service.frontend": {"require_examples": False},
    "repro.solve": {"require_examples": False},
    "repro.tuning": {"require_examples": False},
}

#: Minimum characters for a docstring to count as substantive.
MIN_DOC_CHARS = 20

#: Required coverage (the post-audit level).
THRESHOLD = 1.0


def audit_module(module_name, require_examples=False):
    """Return (checked, problems) for one module's ``__all__``."""
    module = importlib.import_module(module_name)
    problems = []
    checked = 0
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if not (inspect.isfunction(obj) or inspect.isclass(obj)
                or inspect.ismodule(obj)):
            continue  # re-exported constants (e.g. __version__) need no doc
        checked += 1
        doc = inspect.getdoc(obj)
        if not doc or len(doc.strip()) < MIN_DOC_CHARS:
            problems.append(f"{module_name}.{name}: missing/trivial docstring")
            continue
        if require_examples and inspect.isfunction(obj) and ">>>" not in doc:
            problems.append(
                f"{module_name}.{name}: no runnable Examples section (>>> )"
            )
    # the module docstring itself is part of the audited surface
    checked += 1
    if not module.__doc__ or len(module.__doc__.strip()) < MIN_DOC_CHARS:
        problems.append(f"{module_name}: missing module docstring")
    return checked, problems


def main():
    total = 0
    all_problems = []
    for module_name, rules in AUDITED.items():
        checked, problems = audit_module(module_name, **rules)
        total += checked
        all_problems.extend(problems)
    covered = total - len(all_problems)
    coverage = covered / total if total else 1.0
    print(f"docstring coverage: {covered}/{total} audited symbols "
          f"({coverage:.1%}, gate {THRESHOLD:.0%})")
    if all_problems:
        print("\nproblems:")
        for problem in all_problems:
            print(f"  - {problem}")
    return 0 if coverage >= THRESHOLD else 1


if __name__ == "__main__":
    sys.exit(main())
