#!/usr/bin/env python
"""Link checker for the documentation pages.

Scans ``README.md`` and every ``docs/*.md`` page for Markdown links and
images, and fails (exit 1) if a *relative* target does not exist in the
repository.  External (``http(s)://``, ``mailto:``) and pure-anchor
(``#...``) targets are not fetched -- the gate guards the repo-internal
cross-references (docs pages, benchmark scripts, source modules) that
refactors silently break.

Run from the repository root:

    python tools/check_docs_links.py
"""

from __future__ import annotations

import glob
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Markdown inline links and images: [text](target) / ![alt](target).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Fenced code blocks (links inside them are illustrative, not navigable).
FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def doc_pages():
    pages = [os.path.join(REPO_ROOT, "README.md")]
    pages.extend(sorted(glob.glob(os.path.join(REPO_ROOT, "docs", "*.md"))))
    return [p for p in pages if os.path.exists(p)]


def check_page(path):
    """Return (n_links, broken-link descriptions) for one page."""
    with open(path) as fh:
        text = FENCE_RE.sub("", fh.read())
    broken = []
    n_links = 0
    for match in LINK_RE.finditer(text):
        n_links += 1
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        resolved = os.path.normpath(os.path.join(os.path.dirname(path), rel))
        if not os.path.exists(resolved):
            broken.append(f"{os.path.relpath(path, REPO_ROOT)}: "
                          f"broken link -> {target}")
    return n_links, broken


def main():
    pages = doc_pages()
    broken = []
    n_links = 0
    for page in pages:
        page_links, page_broken = check_page(page)
        n_links += page_links
        broken.extend(page_broken)
    print(f"checked {len(pages)} page(s), {n_links} link(s)")
    if broken:
        print("\nbroken links:")
        for item in broken:
            print(f"  - {item}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
